// Deterministic fault injection: named fault points compiled into the
// library's failure-prone seams (artifact open/read/checksum/write, registry
// materialization, worker batch execution), armed per-test or via the
// EPIM_FAULT environment variable. The chaos suite (tests/test_fault.cpp)
// drives every point under concurrent traffic and asserts the system-wide
// invariant: every submitted request resolves (value or pinned error), no
// hang, and successful results stay bit-identical to the fault-free run.
//
// Design constraints, in order:
//
//  * Always compiled. A fault path that only exists in a special build is a
//    fault path production never proved; the points are part of the library
//    so the same binary that serves traffic can be chaos-tested.
//  * Zero-cost when disarmed. `should_fire()` is a single relaxed atomic
//    load of the armed-point count when nothing is armed -- no lock, no map
//    lookup, no hit counting. Only an ARMED run pays the registry lock.
//  * Deterministic. Triggers are a seeded Bernoulli draw (`prob`) or a
//    fire-on-exactly-the-Nth-hit counter (`nth`); the same seed and the
//    same hit sequence reproduce the same faults, the property every other
//    stochastic component of the repo pins. A third trigger, the GATE
//    (arm_gate/open_gate, test-API only -- not expressible via EPIM_FAULT,
//    which must never arm something that blocks forever), makes a hit BLOCK
//    at the point instead of firing: with wait_for_hits() it turns "model A
//    is mid-load while..." from a sleep-and-hope race into an exact,
//    timing-free interleaving.
//
// Current fault points (grep for fault::maybe_fail / fault::should_fire):
//
//   artifact.open          before any artifact file is opened (load + probe)
//   artifact.read          after an artifact file's bytes are slurped
//   artifact.checksum      forces a section-checksum mismatch (simulated
//                          bit corruption through the REAL rejection path)
//   artifact.write         mid-save, between sections (simulated crash; the
//                          atomic temp-file+rename save must keep the
//                          destination intact)
//   registry.materialize   at the top of cold-entry materialization
//   serve.run_batch        inside a worker's batch execution
//   serve.schedule         at batch-close selection, after the scheduler
//                          picked the batch and the queue lock dropped: an
//                          injected fault fails exactly that batch's
//                          futures and must never kill the worker or
//                          shrink the pool below ServeConfig::workers
//
// Environment arming: EPIM_FAULT holds ';'-separated entries
// `point=prob:RATE[:SEED]` or `point=nth:N`, parsed once at process start
// (abort with a diagnostic on a malformed spec -- a typo'd chaos run must
// not silently test nothing). Example:
//
//   EPIM_FAULT="serve.run_batch=prob:0.01:42;artifact.open=nth:3" ./test_fault
//
// Lock order: the fault registry's mutex is a LEAF -- fault-point
// evaluation acquires it and nothing else. Since PR 8 no fault point is
// evaluated with ModelRegistry::mu_ held at all (materialization runs with
// the registry lock dropped), so the fault mutex is only ever taken with no
// other epim lock held; the lockdep-gated tests pin the ABSENCE of the old
// ModelRegistry::mu_ -> fault::FaultRegistry::mu_ edge. A hit blocked at a
// gate parks on the registry's CondVar with the fault mutex released, so
// gates cannot wedge unrelated points.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"

namespace epim {
namespace fault {

/// Message prefix of every injected failure (pinned by tests): the
/// exceptions faults raise must be distinguishable from organic ones.
inline constexpr const char* kErrInjected = "injected fault";

/// Introspection snapshot of one point (see status()).
struct PointStatus {
  std::string point;
  bool armed = false;
  /// Trigger evaluations since the point was (last) armed. Disarmed points
  /// are never counted -- the fast path returns before any bookkeeping.
  std::int64_t hits = 0;
  /// Times the trigger actually fired.
  std::int64_t fires = 0;
};

namespace detail {
/// Count of currently-armed points. The ONLY state the fast path reads.
extern std::atomic<int> g_armed_points;
/// Slow path: registry lookup + trigger evaluation under the fault mutex.
bool should_fire_slow(const char* point);
}  // namespace detail

/// Evaluate the named fault point: true iff it is armed and its trigger
/// fires on this hit. When no point is armed (the production steady state)
/// this is one relaxed atomic load -- the points can stay in hot paths.
inline bool should_fire(const char* point) {
  if (detail::g_armed_points.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  return detail::should_fire_slow(point);
}

/// should_fire(), but a firing point throws epim::Unavailable with the
/// pinned kErrInjected prefix and the point name. The standard call shape
/// for "this operation fails here".
void maybe_fail(const char* point);

/// Arm `point` with a seeded Bernoulli trigger: each hit fires with
/// probability `rate` (in [0, 1]), drawn from an Rng seeded with `seed`, so
/// a fixed seed yields a pinned fire pattern. Re-arming replaces the
/// previous trigger and resets the hit/fire counters.
void arm_probability(const std::string& point, double rate,
                     std::uint64_t seed = 0xFA117u);

/// Arm `point` to fire exactly on its Nth hit (1-based) and never again
/// until re-armed -- the trigger for "the first load succeeds, the retry
/// fails" style tests.
void arm_nth(const std::string& point, std::int64_t n);

/// Arm `point` as a GATE: every hit BLOCKS inside should_fire() (after
/// being counted, so wait_for_hits() observes the arrival) until
/// open_gate() or disarm()/disarm_all() releases it; a gated hit never
/// fires. This is the deterministic "hold the operation right here"
/// primitive behind the concurrency tests -- e.g. freezing one model's
/// materialization mid-flight while asserting another keeps serving.
/// Test API only: EPIM_FAULT cannot arm gates (nothing would open them).
void arm_gate(const std::string& point);

/// Release every hit blocked at `point`'s gate and let future hits pass
/// straight through (the gate stays armed so hits keep counting). No-op if
/// the point is unknown or not gated.
void open_gate(const std::string& point);

/// Block until `point` has been hit at least `n` times since (re)arming.
/// With a gate armed this sequences threads exactly: after
/// wait_for_hits(p, 1) returns, some thread is provably parked at (or has
/// passed) the point. Must not be called from a thread that could itself
/// be blocked at the same gate.
void wait_for_hits(const std::string& point, std::int64_t n);

/// Parse and arm a ';'-separated spec (the EPIM_FAULT format):
/// `point=prob:RATE[:SEED]` or `point=nth:N`. Throws InvalidArgument on a
/// malformed entry; already-parsed entries stay armed.
void arm_spec(const std::string& spec);

/// Re-read EPIM_FAULT and arm its points (idempotent; also runs once
/// automatically at process start). Returns the number of entries armed.
int reload_env();

/// Disarm one point (keeps its counters readable) / every point.
void disarm(const std::string& point);
void disarm_all();

/// Counters of one point (0 if never armed). hits() counts trigger
/// evaluations since arming; fires() the subset that fired. A fast-failed
/// request that never reached the guarded operation leaves hits()
/// unchanged -- the chaos tests use exactly that to prove a quarantined
/// model's requests never touch the load path.
std::int64_t hits(const std::string& point);
std::int64_t fires(const std::string& point);

/// Snapshot of every point ever armed (diagnostics).
std::vector<PointStatus> status();

/// The fault registry's internal mutex, exposed ONLY so lock-order
/// annotations elsewhere can name it in EPIM_ACQUIRED_BEFORE (the attribute
/// needs an in-scope capability expression). Never lock it directly. (No
/// in-tree annotation names it since the registry lock stopped covering
/// fault points; kept for future layers that nest a fault point under a
/// lock of their own.)
Mutex& registry_mutex();

}  // namespace fault
}  // namespace epim
