#include "tensor/tensor.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/check.hpp"

namespace epim {

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    EPIM_CHECK(d >= 0, "shape dimensions must be non-negative");
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<std::size_t>(shape_numel(shape_)), 0.0f);
}

Tensor::Tensor(Shape shape, float fill) : shape_(std::move(shape)) {
  data_.assign(static_cast<std::size_t>(shape_numel(shape_)), fill);
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  EPIM_CHECK(static_cast<std::int64_t>(data_.size()) == shape_numel(shape_),
             "data size must match shape " + shape_to_string(shape_));
}

std::int64_t Tensor::dim(std::int64_t i) const {
  EPIM_CHECK(i >= 0 && i < rank(), "dimension index out of range");
  return shape_[static_cast<std::size_t>(i)];
}

float& Tensor::at(std::int64_t i) {
  EPIM_CHECK(i >= 0 && i < numel(), "flat index out of range");
  return data_[static_cast<std::size_t>(i)];
}

float Tensor::at(std::int64_t i) const {
  EPIM_CHECK(i >= 0 && i < numel(), "flat index out of range");
  return data_[static_cast<std::size_t>(i)];
}

void Tensor::check_index(std::int64_t axis, std::int64_t idx) const {
  EPIM_CHECK(idx >= 0 && idx < shape_[static_cast<std::size_t>(axis)],
             "index out of range on axis " + std::to_string(axis) +
                 " for shape " + shape_to_string(shape_));
}

std::int64_t Tensor::flat_index2(std::int64_t i0, std::int64_t i1) const {
  EPIM_CHECK(rank() == 2, "rank-2 access on tensor of rank " +
                              std::to_string(rank()));
  check_index(0, i0);
  check_index(1, i1);
  return i0 * shape_[1] + i1;
}

std::int64_t Tensor::flat_index3(std::int64_t i0, std::int64_t i1,
                                 std::int64_t i2) const {
  EPIM_CHECK(rank() == 3, "rank-3 access on tensor of rank " +
                              std::to_string(rank()));
  check_index(0, i0);
  check_index(1, i1);
  check_index(2, i2);
  return (i0 * shape_[1] + i1) * shape_[2] + i2;
}

std::int64_t Tensor::flat_index4(std::int64_t i0, std::int64_t i1,
                                 std::int64_t i2, std::int64_t i3) const {
  EPIM_CHECK(rank() == 4, "rank-4 access on tensor of rank " +
                              std::to_string(rank()));
  check_index(0, i0);
  check_index(1, i1);
  check_index(2, i2);
  check_index(3, i3);
  return ((i0 * shape_[1] + i1) * shape_[2] + i2) * shape_[3] + i3;
}

float& Tensor::operator()(std::int64_t i0) {
  EPIM_CHECK(rank() == 1, "rank-1 access on tensor of rank " +
                              std::to_string(rank()));
  check_index(0, i0);
  return data_[static_cast<std::size_t>(i0)];
}

float& Tensor::operator()(std::int64_t i0, std::int64_t i1) {
  return data_[static_cast<std::size_t>(flat_index2(i0, i1))];
}

float& Tensor::operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2) {
  return data_[static_cast<std::size_t>(flat_index3(i0, i1, i2))];
}

float& Tensor::operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                          std::int64_t i3) {
  return data_[static_cast<std::size_t>(flat_index4(i0, i1, i2, i3))];
}

float Tensor::operator()(std::int64_t i0) const {
  EPIM_CHECK(rank() == 1, "rank-1 access on tensor of rank " +
                              std::to_string(rank()));
  check_index(0, i0);
  return data_[static_cast<std::size_t>(i0)];
}

float Tensor::operator()(std::int64_t i0, std::int64_t i1) const {
  return data_[static_cast<std::size_t>(flat_index2(i0, i1))];
}

float Tensor::operator()(std::int64_t i0, std::int64_t i1,
                         std::int64_t i2) const {
  return data_[static_cast<std::size_t>(flat_index3(i0, i1, i2))];
}

float Tensor::operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                         std::int64_t i3) const {
  return data_[static_cast<std::size_t>(flat_index4(i0, i1, i2, i3))];
}

std::int64_t Tensor::offset(const std::vector<std::int64_t>& idx) const {
  EPIM_CHECK(static_cast<std::int64_t>(idx.size()) == rank(),
             "index rank must match tensor rank");
  std::int64_t off = 0;
  for (std::size_t a = 0; a < idx.size(); ++a) {
    check_index(static_cast<std::int64_t>(a), idx[a]);
    off = off * shape_[a] + idx[a];
  }
  return off;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  EPIM_CHECK(shape_numel(new_shape) == numel(),
             "reshape must preserve element count");
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

float Tensor::min() const {
  EPIM_CHECK(!empty(), "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  EPIM_CHECK(!empty(), "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

double Tensor::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double Tensor::mean() const {
  EPIM_CHECK(!empty(), "mean of empty tensor");
  return sum() / static_cast<double>(numel());
}

}  // namespace epim
