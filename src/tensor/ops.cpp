#include "tensor/ops.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace epim {

// The matmuls parallelize over output rows: every row of the result is
// computed by exactly one thread with a fixed inner-loop order, so outputs
// are bit-identical at any thread count.

Tensor matmul(const Tensor& a, const Tensor& b) {
  EPIM_CHECK(a.rank() == 2 && b.rank() == 2, "matmul requires rank-2 inputs");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  EPIM_CHECK(b.dim(0) == k, "matmul inner dimensions must agree");
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  parallel_for(m, [&](std::int64_t i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  });
  return c;
}

Tensor transpose2d(const Tensor& a) {
  EPIM_CHECK(a.rank() == 2, "transpose2d requires a rank-2 tensor");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) out.at(j * m + i) = a.at(i * n + j);
  }
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  EPIM_CHECK(a.rank() == 2 && b.rank() == 2,
             "matmul_nt requires rank-2 inputs");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  EPIM_CHECK(b.dim(1) == k, "matmul_nt inner dimensions must agree");
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  parallel_for(m, [&](std::int64_t i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const float* arow = pa + i * k;
      const float* brow = pb + j * k;
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(arow[kk]) * brow[kk];
      }
      pc[i * n + j] = static_cast<float>(acc);
    }
  });
  return c;
}

Tensor add(const Tensor& a, const Tensor& b) {
  EPIM_CHECK(a.shape() == b.shape(), "add requires matching shapes");
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    out.at(i) = a.at(i) + b.at(i);
  }
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  EPIM_CHECK(a.shape() == b.shape(), "sub requires matching shapes");
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    out.at(i) = a.at(i) - b.at(i);
  }
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) out.at(i) = a.at(i) * s;
  return out;
}

void add_inplace(Tensor& out, const Tensor& a) {
  EPIM_CHECK(out.shape() == a.shape(), "add_inplace requires matching shapes");
  float* po = out.data();
  const float* pa = a.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) po[i] += pa[i];
}

void axpy_inplace(Tensor& out, float s, const Tensor& a) {
  EPIM_CHECK(out.shape() == a.shape(), "axpy_inplace requires matching shapes");
  float* po = out.data();
  const float* pa = a.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) po[i] += s * pa[i];
}

double mse(const Tensor& a, const Tensor& b) {
  EPIM_CHECK(a.shape() == b.shape(), "mse requires matching shapes");
  EPIM_CHECK(a.numel() > 0, "mse of empty tensors");
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(a.at(i)) - b.at(i);
    acc += d * d;
  }
  return acc / static_cast<double>(a.numel());
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  EPIM_CHECK(a.shape() == b.shape(), "max_abs_diff requires matching shapes");
  double m = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a.at(i)) - b.at(i)));
  }
  return m;
}

double l2_norm(const Tensor& a) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    acc += static_cast<double>(a.at(i)) * a.at(i);
  }
  return std::sqrt(acc);
}

std::int64_t conv_out_dim(std::int64_t in, std::int64_t k, std::int64_t stride,
                          std::int64_t pad) {
  EPIM_CHECK(stride > 0, "stride must be positive");
  EPIM_CHECK(in + 2 * pad >= k, "kernel larger than padded input");
  return (in + 2 * pad - k) / stride + 1;
}

Tensor im2col(const Tensor& input, std::int64_t kh, std::int64_t kw,
              std::int64_t stride, std::int64_t pad) {
  EPIM_CHECK(input.rank() == 3, "im2col expects a (C, H, W) tensor");
  const std::int64_t c = input.dim(0), h = input.dim(1), w = input.dim(2);
  const std::int64_t oh = conv_out_dim(h, kh, stride, pad);
  const std::int64_t ow = conv_out_dim(w, kw, stride, pad);
  Tensor cols({oh * ow, c * kh * kw});
  float* pc = cols.data();
  const float* pi = input.data();
  parallel_for(oh, [&](std::int64_t oy) {
    for (std::int64_t ox = 0; ox < ow; ++ox) {
      float* row = pc + (oy * ow + ox) * (c * kh * kw);
      for (std::int64_t ci = 0; ci < c; ++ci) {
        for (std::int64_t ky = 0; ky < kh; ++ky) {
          const std::int64_t iy = oy * stride + ky - pad;
          for (std::int64_t kx = 0; kx < kw; ++kx) {
            const std::int64_t ix = ox * stride + kx - pad;
            float v = 0.0f;
            if (iy >= 0 && iy < h && ix >= 0 && ix < w) {
              v = pi[(ci * h + iy) * w + ix];
            }
            row[(ci * kh + ky) * kw + kx] = v;
          }
        }
      }
    }
  });
  return cols;
}

Tensor col2im(const Tensor& cols, std::int64_t channels, std::int64_t height,
              std::int64_t width, std::int64_t kh, std::int64_t kw,
              std::int64_t stride, std::int64_t pad) {
  EPIM_CHECK(cols.rank() == 2, "col2im expects a rank-2 tensor");
  const std::int64_t oh = conv_out_dim(height, kh, stride, pad);
  const std::int64_t ow = conv_out_dim(width, kw, stride, pad);
  EPIM_CHECK(cols.dim(0) == oh * ow && cols.dim(1) == channels * kh * kw,
             "col2im shape mismatch");
  Tensor img({channels, height, width});
  float* pi = img.data();
  const float* pc = cols.data();
  for (std::int64_t oy = 0; oy < oh; ++oy) {
    for (std::int64_t ox = 0; ox < ow; ++ox) {
      const float* row = pc + (oy * ow + ox) * (channels * kh * kw);
      for (std::int64_t ci = 0; ci < channels; ++ci) {
        for (std::int64_t ky = 0; ky < kh; ++ky) {
          const std::int64_t iy = oy * stride + ky - pad;
          if (iy < 0 || iy >= height) continue;
          for (std::int64_t kx = 0; kx < kw; ++kx) {
            const std::int64_t ix = ox * stride + kx - pad;
            if (ix < 0 || ix >= width) continue;
            pi[(ci * height + iy) * width + ix] +=
                row[(ci * kh + ky) * kw + kx];
          }
        }
      }
    }
  }
  return img;
}

}  // namespace epim
