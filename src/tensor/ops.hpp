// Tensor operations used by the NN executor, quantizer and training substrate.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace epim {

/// C = A(mxk) * B(kxn). Shapes are validated.
Tensor matmul(const Tensor& a, const Tensor& b);

/// Transpose of a rank-2 tensor.
Tensor transpose2d(const Tensor& a);

/// C = A * B^T where A is (m x k) and B is (n x k).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// Elementwise out = a + b (shapes must match).
Tensor add(const Tensor& a, const Tensor& b);

/// Elementwise out = a - b (shapes must match).
Tensor sub(const Tensor& a, const Tensor& b);

/// Elementwise out = a * s.
Tensor scale(const Tensor& a, float s);

/// In-place out += a (shapes must match).
void add_inplace(Tensor& out, const Tensor& a);

/// In-place out += s * a (axpy; shapes must match).
void axpy_inplace(Tensor& out, float s, const Tensor& a);

/// Mean squared error between two same-shape tensors.
double mse(const Tensor& a, const Tensor& b);

/// Max absolute difference between two same-shape tensors.
double max_abs_diff(const Tensor& a, const Tensor& b);

/// Frobenius / L2 norm of all elements.
double l2_norm(const Tensor& a);

/// im2col for NCHW single-image input: input (C, H, W) -> matrix of shape
/// (out_h * out_w, C * kh * kw), with zero padding.
Tensor im2col(const Tensor& input, std::int64_t kh, std::int64_t kw,
              std::int64_t stride, std::int64_t pad);

/// Reverse of im2col: scatter-add columns back into an image of shape
/// (C, H, W). Used by the training substrate's convolution backward pass.
Tensor col2im(const Tensor& cols, std::int64_t channels, std::int64_t height,
              std::int64_t width, std::int64_t kh, std::int64_t kw,
              std::int64_t stride, std::int64_t pad);

/// Output spatial size of a convolution dimension.
std::int64_t conv_out_dim(std::int64_t in, std::int64_t k, std::int64_t stride,
                          std::int64_t pad);

}  // namespace epim
