// Dense row-major float tensor used throughout the EPIM stack.
//
// The simulator, quantizer and training substrate all operate on float32
// data; bit-accurate integer behaviour (cells, ADC codes) is modelled on top
// of this representation in src/pim and src/quant.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace epim {

using Shape = std::vector<std::int64_t>;

/// Number of elements implied by a shape (1 for rank-0).
std::int64_t shape_numel(const Shape& shape);

/// Human-readable rendering, e.g. "[2, 3, 4]".
std::string shape_to_string(const Shape& shape);

/// Dense float32 tensor with row-major (C-order) layout.
///
/// Indexing helpers are provided for the ranks the library actually uses
/// (1-4). Out-of-range indices throw in at()/operator(), making shape bugs
/// loud; raw data() access is available for hot loops.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill);
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape), 0.0f); }
  static Tensor full(Shape shape, float v) {
    return Tensor(std::move(shape), v);
  }

  const Shape& shape() const { return shape_; }
  std::int64_t rank() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t dim(std::int64_t i) const;
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  /// Flat element access with bounds checking.
  float& at(std::int64_t i);
  float at(std::int64_t i) const;

  /// Multi-dimensional access (rank must match the overload used).
  float& operator()(std::int64_t i0);
  float& operator()(std::int64_t i0, std::int64_t i1);
  float& operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2);
  float& operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                    std::int64_t i3);
  float operator()(std::int64_t i0) const;
  float operator()(std::int64_t i0, std::int64_t i1) const;
  float operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2) const;
  float operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                   std::int64_t i3) const;

  /// Flat offset of a multi-index (rank-checked).
  std::int64_t offset(const std::vector<std::int64_t>& idx) const;

  /// Return a tensor with the same data and a new shape (numel must match).
  Tensor reshaped(Shape new_shape) const;

  void fill(float v);

  /// Min / max / sum / mean over all elements. Tensor must be non-empty for
  /// min/max/mean.
  float min() const;
  float max() const;
  double sum() const;
  double mean() const;

 private:
  std::int64_t flat_index2(std::int64_t i0, std::int64_t i1) const;
  std::int64_t flat_index3(std::int64_t i0, std::int64_t i1,
                           std::int64_t i2) const;
  std::int64_t flat_index4(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                           std::int64_t i3) const;
  void check_index(std::int64_t axis, std::int64_t idx) const;

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace epim
