// Evolution-search-based layer-wise epitome design (paper Sec. 5.2,
// Algorithm 1).
//
// Genome: one candidate index per weighted layer (candidates from
// core/designer.hpp, including "keep the convolution"). Reward (Eq. 6-7):
//
//   reward = m / latency   or   m / energy,
//   m = 0 if #crossbars(E) > budget else 1,
//
// so any individual exceeding the crossbar budget scores below every
// feasible one. Each generation keeps the top `parents` individuals and
// fills the population with mutated children (random layers reassigned to
// random candidates), exactly the loop of Algorithm 1.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/assignment.hpp"
#include "core/designer.hpp"
#include "pim/estimator.hpp"

namespace epim {

enum class SearchObjective { kLatency, kEnergy, kEdp };

const char* search_objective_name(SearchObjective objective);

struct EvoSearchConfig {
  int population = 40;
  int iterations = 30;
  int parents = 10;
  /// Per-layer probability of reassignment when mutating a parent.
  double mutation_rate = 0.15;
  SearchObjective objective = SearchObjective::kLatency;
  /// Crossbar budget of Eq. 7.
  std::int64_t crossbar_budget = 0;
  CandidateConfig candidates{};
  PrecisionConfig precision = PrecisionConfig::uniform(9, 9);
  std::uint64_t seed = 0xE7'05EA2Cu;
};

struct EvoSearchResult {
  NetworkAssignment best;
  double best_reward = 0.0;
  NetworkCost best_cost;
  /// Best feasible reward after each iteration (for convergence plots).
  std::vector<double> reward_history;
  std::int64_t evaluations = 0;
  /// Size of the search space (candidate count product, saturating).
  double search_space_size = 0.0;
};

class EvolutionSearch {
 public:
  EvolutionSearch(const Network& network, const PimEstimator& estimator,
                  EvoSearchConfig config);

  /// Candidate set of one layer (exposed for tests/benches).
  const std::vector<std::optional<EpitomeSpec>>& layer_candidates(
      std::int64_t layer) const;

  EvoSearchResult run();

 private:
  using Genome = std::vector<int>;

  NetworkAssignment to_assignment(const Genome& genome) const;
  double reward_of(const NetworkCost& cost) const;
  Genome random_genome(Rng& rng) const;
  Genome mutate(const Genome& parent, Rng& rng) const;

  const Network* network_;
  const PimEstimator* estimator_;
  EvoSearchConfig config_;
  std::vector<std::vector<std::optional<EpitomeSpec>>> candidates_;
};

}  // namespace epim
