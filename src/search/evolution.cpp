#include "search/evolution.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"

namespace epim {

const char* search_objective_name(SearchObjective objective) {
  switch (objective) {
    case SearchObjective::kLatency:
      return "latency";
    case SearchObjective::kEnergy:
      return "energy";
    case SearchObjective::kEdp:
      return "edp";
  }
  return "?";
}

EvolutionSearch::EvolutionSearch(const Network& network,
                                 const PimEstimator& estimator,
                                 EvoSearchConfig config)
    : network_(&network), estimator_(&estimator), config_(std::move(config)) {
  EPIM_CHECK(config_.population >= 2, "population must be at least 2");
  EPIM_CHECK(config_.parents >= 1 && config_.parents < config_.population,
             "parents must be in [1, population)");
  EPIM_CHECK(config_.iterations >= 1, "iterations must be positive");
  EPIM_CHECK(config_.crossbar_budget > 0, "crossbar budget must be positive");
  for (const auto& layer : network.weighted_layers()) {
    candidates_.push_back(candidate_specs(layer.conv, config_.candidates));
    EPIM_ASSERT(!candidates_.back().empty(),
                "every layer needs at least one candidate");
  }
}

const std::vector<std::optional<EpitomeSpec>>&
EvolutionSearch::layer_candidates(std::int64_t layer) const {
  EPIM_CHECK(layer >= 0 &&
                 layer < static_cast<std::int64_t>(candidates_.size()),
             "layer index out of range");
  return candidates_[static_cast<std::size_t>(layer)];
}

NetworkAssignment EvolutionSearch::to_assignment(const Genome& genome) const {
  std::vector<std::optional<EpitomeSpec>> choices;
  choices.reserve(genome.size());
  for (std::size_t i = 0; i < genome.size(); ++i) {
    choices.push_back(
        candidates_[i][static_cast<std::size_t>(genome[i])]);
  }
  return NetworkAssignment(*network_, std::move(choices));
}

double EvolutionSearch::reward_of(const NetworkCost& cost) const {
  // Eq. 7: individuals over the crossbar budget are worth nothing.
  if (cost.num_crossbars > config_.crossbar_budget) return 0.0;
  switch (config_.objective) {  // Eq. 6
    case SearchObjective::kLatency:
      return 1.0 / cost.latency_ms;
    case SearchObjective::kEnergy:
      return 1.0 / cost.energy_mj();
    case SearchObjective::kEdp:
      return 1.0 / cost.edp();
  }
  return 0.0;
}

EvolutionSearch::Genome EvolutionSearch::random_genome(Rng& rng) const {
  Genome g(candidates_.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = rng.index(static_cast<int>(candidates_[i].size()));
  }
  return g;
}

EvolutionSearch::Genome EvolutionSearch::mutate(const Genome& parent,
                                                Rng& rng) const {
  Genome child = parent;
  bool changed = false;
  for (std::size_t i = 0; i < child.size(); ++i) {
    if (rng.flip(config_.mutation_rate)) {
      child[i] = rng.index(static_cast<int>(candidates_[i].size()));
      changed = true;
    }
  }
  if (!changed) {  // guarantee progress: force one reassignment
    const std::size_t i =
        static_cast<std::size_t>(rng.index(static_cast<int>(child.size())));
    child[i] = rng.index(static_cast<int>(candidates_[i].size()));
  }
  return child;
}

EvoSearchResult EvolutionSearch::run() {
  Rng rng(config_.seed);
  struct Scored {
    Genome genome;
    double reward = 0.0;
  };

  // Initial population: random genomes plus warm starts -- one uniform
  // design per (row, cout) target in the candidate grid (so the search can
  // only improve on every manual uniform baseline that is feasible) and the
  // maximum-compression genome (the most likely to be feasible under tight
  // budgets).
  std::vector<Genome> population;
  for (const std::int64_t rows : config_.candidates.row_targets) {
    for (const std::int64_t cout : config_.candidates.cout_targets) {
      if (static_cast<int>(population.size()) >= config_.population - 1) {
        break;
      }
      UniformDesign policy;
      policy.target_rows = rows;
      policy.target_cout = cout;
      policy.crossbar_size = config_.candidates.crossbar_size;
      policy.spatial_slack = config_.candidates.spatial_slack;
      policy.wrap_output = config_.candidates.wrap_output;
      Genome uniform(candidates_.size(), 0);
      for (std::size_t i = 0; i < candidates_.size(); ++i) {
        const auto want =
            design_uniform(network_->weighted_layers()[i].conv, policy);
        for (std::size_t c = 0; c < candidates_[i].size(); ++c) {
          if (candidates_[i][c] == want) {
            uniform[i] = static_cast<int>(c);
            break;
          }
        }
      }
      if (std::find(population.begin(), population.end(), uniform) ==
          population.end()) {
        population.push_back(std::move(uniform));
      }
    }
  }
  {
    Genome smallest(candidates_.size());
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      std::int64_t best_params = std::numeric_limits<std::int64_t>::max();
      for (std::size_t c = 0; c < candidates_[i].size(); ++c) {
        const auto& cand = candidates_[i][c];
        const std::int64_t params =
            cand.has_value()
                ? cand->weight_count()
                : network_->weighted_layers()[i].conv.weight_count();
        if (params < best_params) {
          best_params = params;
          smallest[i] = static_cast<int>(c);
        }
      }
    }
    population.push_back(std::move(smallest));
  }
  while (static_cast<int>(population.size()) < config_.population) {
    population.push_back(random_genome(rng));
  }

  EvoSearchResult result{NetworkAssignment::baseline(*network_), 0.0,
                         NetworkCost{}, {}, 0, 0.0};
  double space = 1.0;
  for (const auto& c : candidates_) {
    space *= static_cast<double>(c.size());
  }
  result.search_space_size = space;

  std::vector<Scored> scored;
  std::vector<NetworkCost> costs;
  for (int iter = 0; iter < config_.iterations; ++iter) {
    // Candidate scoring fans out across threads: the estimator is pure, and
    // every genome writes its own slot, so the scores -- and therefore the
    // winner -- are identical at any thread count.
    scored.assign(population.size(), Scored{});
    costs.assign(population.size(), NetworkCost{});
    parallel_for(static_cast<std::int64_t>(population.size()),
                 [&](std::int64_t i) {
                   const std::size_t s = static_cast<std::size_t>(i);
                   const NetworkAssignment assignment =
                       to_assignment(population[s]);
                   costs[s] =
                       estimator_->eval_network(assignment, config_.precision);
                   scored[s] = {population[s], reward_of(costs[s])};
                 });
    // Best-so-far update stays sequential in population order (first
    // strict improvement wins), exactly as the serial loop behaved.
    for (std::size_t i = 0; i < scored.size(); ++i) {
      ++result.evaluations;
      if (scored[i].reward > result.best_reward) {
        result.best_reward = scored[i].reward;
        result.best = to_assignment(scored[i].genome);
        result.best_cost = costs[i];
      }
    }
    result.reward_history.push_back(result.best_reward);
    // Select parents (Algorithm 1 line 9) and refill with mutants.
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) {
                return a.reward > b.reward;
              });
    population.clear();
    const int parents = std::min<int>(config_.parents,
                                      static_cast<int>(scored.size()));
    for (int p = 0; p < parents; ++p) {
      population.push_back(scored[static_cast<std::size_t>(p)].genome);
    }
    while (static_cast<int>(population.size()) < config_.population) {
      const int p = rng.index(parents);
      population.push_back(
          mutate(scored[static_cast<std::size_t>(p)].genome, rng));
    }
    EPIM_LOG(kDebug) << "evo iter " << iter << " best reward "
                     << result.best_reward;
  }
  EPIM_CHECK(result.best_reward > 0.0,
             "evolution search found no feasible assignment; raise the "
             "crossbar budget");
  return result;
}

}  // namespace epim
