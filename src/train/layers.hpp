// Trainable layers with manual forward/backward (the training substrate).
//
// All image tensors are batched NCHW. The epitome layer trains *through the
// reconstruction*: its forward pass reconstructs convolution weights from
// the epitome, and its backward pass folds the convolution-weight gradient
// back onto the epitome by scatter-add (Epitome::fold_gradient), so shared
// (highly-repeated) epitome entries accumulate gradient from every site they
// occupy -- exactly how the original epitome operator is trained.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/epitome.hpp"
#include "nn/conv_exec.hpp"  // ChannelAffine, the folded-BN deploy target
#include "nn/layer.hpp"
#include "tensor/tensor.hpp"

namespace epim {

/// A parameter tensor with its gradient and SGD-momentum state.
struct SgdParam {
  Tensor value;
  Tensor grad;
  Tensor velocity;

  void init(Shape shape);
  void zero_grad();
  /// SGD with momentum and decoupled weight decay.
  void step(float lr, float momentum, float weight_decay);
};

/// Plain trainable convolution (no bias; BatchNorm follows in the nets).
class Conv2dLayer {
 public:
  Conv2dLayer(ConvSpec spec, Rng& rng);

  const ConvSpec& spec() const { return spec_; }
  SgdParam& weight() { return weight_; }

  Tensor forward(const Tensor& x, bool train);
  Tensor backward(const Tensor& grad_out);
  void zero_grad() { weight_.zero_grad(); }
  void step(float lr, float momentum, float wd) {
    weight_.step(lr, momentum, wd);
  }

 private:
  ConvSpec spec_;
  SgdParam weight_;  // (cout, cin, kh, kw)
  std::vector<Tensor> cols_cache_;
  std::int64_t in_h_ = 0, in_w_ = 0;
};

/// Trainable epitome convolution.
class EpitomeConvLayer {
 public:
  EpitomeConvLayer(EpitomeSpec spec, ConvSpec conv, Rng& rng);

  Epitome& epitome() { return epitome_; }
  const Epitome& epitome() const { return epitome_; }

  Tensor forward(const Tensor& x, bool train);
  Tensor backward(const Tensor& grad_out);
  void zero_grad() { weight_.zero_grad(); }
  void step(float lr, float momentum, float wd);

  /// Snapshot/restore of the epitome weights (used by quantized evaluation).
  Tensor weights_snapshot() const { return epitome_.weights(); }
  void restore_weights(const Tensor& snapshot);

 private:
  Epitome epitome_;
  SgdParam weight_;  // mirrors epitome_.weights()
  std::vector<Tensor> cols_cache_;
  std::int64_t in_h_ = 0, in_w_ = 0;
};

/// Per-channel batch normalization over (N, H, W).
class BatchNorm2d {
 public:
  explicit BatchNorm2d(std::int64_t channels);

  Tensor forward(const Tensor& x, bool train);
  Tensor backward(const Tensor& grad_out);
  void zero_grad();
  void step(float lr, float momentum, float wd);

  /// Fold the eval-mode normalization (running stats + gamma/beta) into a
  /// per-channel affine, as done when deploying onto the PIM runtime.
  ChannelAffine eval_affine() const;

 private:
  std::int64_t channels_;
  SgdParam gamma_, beta_;
  Tensor running_mean_, running_var_;
  double momentum_ = 0.1;
  double eps_ = 1e-5;
  // Caches for backward.
  Tensor xhat_;
  std::vector<double> inv_std_;
};

class ReluLayer {
 public:
  Tensor forward(const Tensor& x, bool train);
  Tensor backward(const Tensor& grad_out);

 private:
  std::vector<bool> mask_;
};

class MaxPool2dLayer {
 public:
  MaxPool2dLayer(std::int64_t k, std::int64_t stride)
      : k_(k), stride_(stride) {}

  Tensor forward(const Tensor& x, bool train);
  Tensor backward(const Tensor& grad_out);

 private:
  std::int64_t k_, stride_;
  Shape in_shape_;
  std::vector<std::int64_t> argmax_;
};

/// (N, C, H, W) -> (N, C).
class GlobalAvgPoolLayer {
 public:
  Tensor forward(const Tensor& x, bool train);
  Tensor backward(const Tensor& grad_out);

 private:
  Shape in_shape_;
};

/// Fully connected (N, F) -> (N, K) with bias.
class DenseLayer {
 public:
  DenseLayer(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  SgdParam& weight() { return weight_; }
  SgdParam& bias() { return bias_; }

  Tensor forward(const Tensor& x, bool train);
  Tensor backward(const Tensor& grad_out);
  void zero_grad();
  void step(float lr, float momentum, float wd);

 private:
  std::int64_t in_f_, out_f_;
  SgdParam weight_;  // (K, F)
  SgdParam bias_;    // (K)
  Tensor input_cache_;
};

/// Softmax cross-entropy head.
struct SoftmaxLoss {
  double loss = 0.0;
  Tensor grad;               ///< d loss / d logits, (N, K)
  std::vector<int> predicted;
};

SoftmaxLoss softmax_cross_entropy(const Tensor& logits,
                                  const std::vector<int>& labels);

}  // namespace epim
