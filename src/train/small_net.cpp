#include "train/small_net.hpp"

#include "common/check.hpp"

namespace epim {

namespace {

/// Epitome shape used by the middle blocks: 4x4 spatial plane over a 3x3
/// kernel (overlapping patches) and half the conv's channel extent, giving
/// ~2.25x parameter compression per layer.
EpitomeSpec mid_block_spec(const ConvSpec& conv, bool wrap) {
  EpitomeSpec spec;
  spec.p = 4;
  spec.q = 4;
  spec.cin_e = conv.in_channels / 2;
  spec.cout_e = conv.out_channels / 2;
  spec.wrap_output = wrap;
  return spec;
}

}  // namespace

SmallEpitomeNet::SmallEpitomeNet(const SmallNetConfig& config)
    : config_(config), bn1_(16), bn2_(32), pool2_(2, 2), bn3_(64),
      pool3_(2, 2) {
  Rng rng(config.seed);
  const ConvSpec c1{config.in_channels, 16, 3, 3, 1, 1};
  const ConvSpec c2{16, 32, 3, 3, 1, 1};
  const ConvSpec c3{32, 64, 3, 3, 1, 1};
  conv1_ = std::make_unique<Conv2dLayer>(c1, rng);
  if (config.use_epitome) {
    epi2_ = std::make_unique<EpitomeConvLayer>(
        mid_block_spec(c2, config.wrap_output), c2, rng);
    epi3_ = std::make_unique<EpitomeConvLayer>(
        mid_block_spec(c3, config.wrap_output), c3, rng);
  } else {
    conv2_ = std::make_unique<Conv2dLayer>(c2, rng);
    conv3_ = std::make_unique<Conv2dLayer>(c3, rng);
  }
  dense_ = std::make_unique<DenseLayer>(64, config.num_classes, rng);
}

Tensor SmallEpitomeNet::forward(const Tensor& x, bool train) {
  Tensor h = relu1_.forward(bn1_.forward(conv1_->forward(x, train), train),
                            train);
  h = epi2_ ? epi2_->forward(h, train) : conv2_->forward(h, train);
  h = pool2_.forward(relu2_.forward(bn2_.forward(h, train), train), train);
  h = epi3_ ? epi3_->forward(h, train) : conv3_->forward(h, train);
  h = pool3_.forward(relu3_.forward(bn3_.forward(h, train), train), train);
  return dense_->forward(gap_.forward(h, train), train);
}

void SmallEpitomeNet::backward(const Tensor& grad_logits) {
  Tensor g = gap_.backward(dense_->backward(grad_logits));
  g = bn3_.backward(relu3_.backward(pool3_.backward(g)));
  g = epi3_ ? epi3_->backward(g) : conv3_->backward(g);
  g = bn2_.backward(relu2_.backward(pool2_.backward(g)));
  g = epi2_ ? epi2_->backward(g) : conv2_->backward(g);
  conv1_->backward(bn1_.backward(relu1_.backward(g)));
}

void SmallEpitomeNet::zero_grad() {
  conv1_->zero_grad();
  bn1_.zero_grad();
  if (epi2_) epi2_->zero_grad();
  if (conv2_) conv2_->zero_grad();
  bn2_.zero_grad();
  if (epi3_) epi3_->zero_grad();
  if (conv3_) conv3_->zero_grad();
  bn3_.zero_grad();
  dense_->zero_grad();
}

void SmallEpitomeNet::step(float lr, float momentum, float weight_decay) {
  conv1_->step(lr, momentum, weight_decay);
  bn1_.step(lr, momentum, weight_decay);
  if (epi2_) epi2_->step(lr, momentum, weight_decay);
  if (conv2_) conv2_->step(lr, momentum, weight_decay);
  bn2_.step(lr, momentum, weight_decay);
  if (epi3_) epi3_->step(lr, momentum, weight_decay);
  if (conv3_) conv3_->step(lr, momentum, weight_decay);
  bn3_.step(lr, momentum, weight_decay);
  dense_->step(lr, momentum, weight_decay);
}

std::vector<EpitomeConvLayer*> SmallEpitomeNet::epitome_layers() {
  std::vector<EpitomeConvLayer*> out;
  if (epi2_) out.push_back(epi2_.get());
  if (epi3_) out.push_back(epi3_.get());
  return out;
}

std::int64_t SmallEpitomeNet::weight_parameters() const {
  std::int64_t n = 16 * config_.in_channels * 9;  // conv1
  if (epi2_) {
    n += epi2_->epitome().weight_count() + epi3_->epitome().weight_count();
  } else {
    n += 32 * 16 * 9 + 64 * 32 * 9;
  }
  n += 64 * config_.num_classes + config_.num_classes;  // dense
  return n;
}

SmallEpitomeNet::QuantizationImpact SmallEpitomeNet::quantize_weights(
    const QuantConfig& config) {
  // First (conv1) and last (dense) layers stay at full precision -- standard
  // practice mirrored from HAWQ; the compressed middle blocks are quantized.
  EpitomeQuantizer quantizer(config);
  QuantizationImpact impact;
  double wse = 0.0, rep_total = 0.0, power = 0.0;
  std::int64_t count = 0;
  auto apply = [&](Epitome& epitome, auto&& commit) {
    const QuantizedEpitome q = quantizer.quantize(epitome);
    const Tensor rep = epitome.repetition_map();
    const Tensor& w = epitome.weights();
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      const double d = static_cast<double>(w.at(i)) - q.dequant_weights.at(i);
      wse += static_cast<double>(rep.at(i)) * d * d;
      rep_total += rep.at(i);
      power += static_cast<double>(w.at(i)) * w.at(i);
      ++count;
    }
    commit(q.dequant_weights);
  };
  if (epi2_) {
    apply(epi2_->epitome(),
          [&](const Tensor& t) { epi2_->restore_weights(t); });
    apply(epi3_->epitome(),
          [&](const Tensor& t) { epi3_->restore_weights(t); });
  } else {
    for (Conv2dLayer* layer : {conv2_.get(), conv3_.get()}) {
      Epitome degenerate =
          Epitome::from_conv_weights(layer->spec(), layer->weight().value);
      apply(degenerate, [&](const Tensor& t) {
        layer->weight().value = t.reshaped(layer->weight().value.shape());
      });
    }
  }
  impact.weighted_mse = rep_total > 0 ? wse / rep_total : 0.0;
  impact.weight_power =
      count > 0 ? power / static_cast<double>(count) : 1.0;
  return impact;
}

SmallEpitomeNet::Deploy SmallEpitomeNet::deploy() const {
  const ConvSpec c2{16, 32, 3, 3, 1, 1};
  const ConvSpec c3{32, 64, 3, 3, 1, 1};
  auto block = [&](const std::unique_ptr<EpitomeConvLayer>& epi,
                   const std::unique_ptr<Conv2dLayer>& conv,
                   const ConvSpec& spec) {
    return epi ? epi->epitome()
               : Epitome::from_conv_weights(spec, conv->weight().value);
  };
  return Deploy{
      config_,
      Epitome::from_conv_weights(ConvSpec{config_.in_channels, 16, 3, 3, 1,
                                          1},
                                 conv1_->weight().value),
      block(epi2_, conv2_, c2),
      block(epi3_, conv3_, c3),
      bn1_.eval_affine(),
      bn2_.eval_affine(),
      bn3_.eval_affine(),
      dense_->weight().value,
      dense_->bias().value};
}

std::vector<Tensor> SmallEpitomeNet::snapshot_weights() const {
  std::vector<Tensor> snap;
  snap.push_back(conv1_->weight().value);
  if (epi2_) {
    snap.push_back(epi2_->weights_snapshot());
    snap.push_back(epi3_->weights_snapshot());
  } else {
    snap.push_back(conv2_->weight().value);
    snap.push_back(conv3_->weight().value);
  }
  snap.push_back(dense_->weight().value);
  return snap;
}

void SmallEpitomeNet::restore_weights(const std::vector<Tensor>& snapshot) {
  EPIM_CHECK(snapshot.size() == 4, "snapshot arity mismatch");
  conv1_->weight().value = snapshot[0];
  if (epi2_) {
    epi2_->restore_weights(snapshot[1]);
    epi3_->restore_weights(snapshot[2]);
  } else {
    conv2_->weight().value = snapshot[1];
    conv3_->weight().value = snapshot[2];
  }
  dense_->weight().value = snapshot[3];
}

}  // namespace epim
