// SGD training loop and (quantized) evaluation for SmallEpitomeNet.
#pragma once

#include <cstdint>
#include <vector>

#include "train/dataset.hpp"
#include "train/small_net.hpp"

namespace epim {

struct TrainConfig {
  int epochs = 10;
  int batch_size = 16;
  float lr = 0.08f;
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
  /// Multiplicative LR decay applied each epoch.
  float lr_decay = 0.85f;
  std::uint64_t seed = 0x7EA1'1E55u;
  bool verbose = false;
};

struct TrainResult {
  std::vector<double> epoch_loss;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
};

/// Train the model in place and report final accuracies.
TrainResult train_model(SmallEpitomeNet& model, const SyntheticData& data,
                        const TrainConfig& config);

/// Top-1 accuracy of the model on a dataset (eval mode).
double evaluate_model(SmallEpitomeNet& model, const Dataset& dataset);

/// Quantize weights under `config`, evaluate, then restore the weights.
struct QuantEvalResult {
  double accuracy = 0.0;
  double weighted_mse = 0.0;
  double weight_power = 0.0;
};

QuantEvalResult evaluate_quantized(SmallEpitomeNet& model,
                                   const Dataset& dataset,
                                   const QuantConfig& config);

}  // namespace epim
