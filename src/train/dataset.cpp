#include "train/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace epim {

Tensor Dataset::sample(std::int64_t i) const {
  EPIM_CHECK(i >= 0 && i < size(), "sample index out of range");
  const std::int64_t c = images.dim(1), h = images.dim(2), w = images.dim(3);
  Tensor out({c, h, w});
  const float* src = images.data() + i * c * h * w;
  std::copy(src, src + c * h * w, out.data());
  return out;
}

namespace {

/// Smooth random template: low-frequency cosine mixture per channel.
Tensor make_template(const SyntheticSpec& spec, Rng& rng) {
  Tensor t({spec.channels, spec.image_size, spec.image_size});
  for (std::int64_t c = 0; c < spec.channels; ++c) {
    const double fx = rng.uniform(0.5, 2.5), fy = rng.uniform(0.5, 2.5);
    const double px = rng.uniform(0.0, 6.28), py = rng.uniform(0.0, 6.28);
    const double amp = rng.uniform(0.6, 1.2);
    for (std::int64_t y = 0; y < spec.image_size; ++y) {
      for (std::int64_t x = 0; x < spec.image_size; ++x) {
        const double v =
            amp * std::cos(fx * 6.28 * static_cast<double>(x) /
                               static_cast<double>(spec.image_size) + px) *
            std::cos(fy * 6.28 * static_cast<double>(y) /
                         static_cast<double>(spec.image_size) + py);
        t(c, y, x) = static_cast<float>(v);
      }
    }
  }
  return t;
}

void emit_samples(const SyntheticSpec& spec, Rng& rng,
                  const std::vector<Tensor>& templates, int per_class,
                  Dataset& out) {
  const std::int64_t n =
      static_cast<std::int64_t>(spec.num_classes) * per_class;
  out.images = Tensor({n, spec.channels, spec.image_size, spec.image_size});
  out.labels.assign(static_cast<std::size_t>(n), 0);
  std::int64_t idx = 0;
  for (int k = 0; k < spec.num_classes; ++k) {
    const Tensor& tpl = templates[static_cast<std::size_t>(k)];
    for (int s = 0; s < per_class; ++s, ++idx) {
      const int dy = rng.uniform_int(-spec.max_shift, spec.max_shift);
      const int dx = rng.uniform_int(-spec.max_shift, spec.max_shift);
      float* dst = out.images.data() +
                   idx * spec.channels * spec.image_size * spec.image_size;
      for (std::int64_t c = 0; c < spec.channels; ++c) {
        for (std::int64_t y = 0; y < spec.image_size; ++y) {
          for (std::int64_t x = 0; x < spec.image_size; ++x) {
            // Toroidal shift keeps pixel statistics shift-invariant.
            const std::int64_t sy =
                (y + dy + spec.image_size) % spec.image_size;
            const std::int64_t sx =
                (x + dx + spec.image_size) % spec.image_size;
            const float noise =
                static_cast<float>(rng.normal(0.0, spec.noise));
            dst[(c * spec.image_size + y) * spec.image_size + x] =
                tpl(c, sy, sx) + noise;
          }
        }
      }
      out.labels[static_cast<std::size_t>(idx)] = k;
    }
  }
}

}  // namespace

SyntheticData make_synthetic_data(const SyntheticSpec& spec) {
  EPIM_CHECK(spec.num_classes >= 2, "need at least two classes");
  EPIM_CHECK(spec.image_size >= 8, "image size too small");
  Rng rng(spec.seed);
  std::vector<Tensor> templates;
  templates.reserve(static_cast<std::size_t>(spec.num_classes));
  for (int k = 0; k < spec.num_classes; ++k) {
    templates.push_back(make_template(spec, rng));
  }
  SyntheticData data;
  data.num_classes = spec.num_classes;
  emit_samples(spec, rng, templates, spec.train_per_class, data.train);
  emit_samples(spec, rng, templates, spec.test_per_class, data.test);
  return data;
}

}  // namespace epim
