#include "train/trainer.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/logging.hpp"

namespace epim {

namespace {

/// Copy a batch of samples (by index) into one (B, C, H, W) tensor.
Tensor gather_batch(const Dataset& data, const std::vector<int>& order,
                    std::int64_t begin, std::int64_t count,
                    std::vector<int>& labels) {
  const std::int64_t c = data.images.dim(1), h = data.images.dim(2),
                     w = data.images.dim(3);
  Tensor batch({count, c, h, w});
  labels.resize(static_cast<std::size_t>(count));
  const std::int64_t sample = c * h * w;
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t src =
        order[static_cast<std::size_t>(begin + i)];
    std::copy(data.images.data() + src * sample,
              data.images.data() + (src + 1) * sample,
              batch.data() + i * sample);
    labels[static_cast<std::size_t>(i)] =
        data.labels[static_cast<std::size_t>(src)];
  }
  return batch;
}

}  // namespace

TrainResult train_model(SmallEpitomeNet& model, const SyntheticData& data,
                        const TrainConfig& config) {
  EPIM_CHECK(config.epochs >= 1 && config.batch_size >= 1,
             "invalid training configuration");
  Rng rng(config.seed);
  TrainResult result;
  const std::int64_t n = data.train.size();
  float lr = config.lr;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    std::vector<int> order = rng.permutation(static_cast<int>(n));
    double loss_sum = 0.0;
    std::int64_t batches = 0;
    for (std::int64_t b = 0; b < n; b += config.batch_size) {
      const std::int64_t count =
          std::min<std::int64_t>(config.batch_size, n - b);
      std::vector<int> labels;
      const Tensor batch = gather_batch(data.train, order, b, count, labels);
      model.zero_grad();
      const Tensor logits = model.forward(batch, /*train=*/true);
      const SoftmaxLoss loss = softmax_cross_entropy(logits, labels);
      model.backward(loss.grad);
      model.step(lr, config.momentum, config.weight_decay);
      loss_sum += loss.loss;
      ++batches;
    }
    result.epoch_loss.push_back(loss_sum / static_cast<double>(batches));
    if (config.verbose) {
      EPIM_LOG(kInfo) << "epoch " << epoch << " loss "
                      << result.epoch_loss.back();
    }
    lr *= config.lr_decay;
  }
  result.train_accuracy = evaluate_model(model, data.train);
  result.test_accuracy = evaluate_model(model, data.test);
  return result;
}

double evaluate_model(SmallEpitomeNet& model, const Dataset& dataset) {
  const std::int64_t n = dataset.size();
  EPIM_CHECK(n > 0, "cannot evaluate on an empty dataset");
  std::int64_t correct = 0;
  const std::int64_t chunk = 32;
  std::vector<int> identity(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    identity[static_cast<std::size_t>(i)] = static_cast<int>(i);
  }
  for (std::int64_t b = 0; b < n; b += chunk) {
    const std::int64_t count = std::min(chunk, n - b);
    std::vector<int> labels;
    const Tensor batch = gather_batch(dataset, identity, b, count, labels);
    const Tensor logits = model.forward(batch, /*train=*/false);
    const SoftmaxLoss loss = softmax_cross_entropy(logits, labels);
    for (std::int64_t i = 0; i < count; ++i) {
      correct += loss.predicted[static_cast<std::size_t>(i)] ==
                         labels[static_cast<std::size_t>(i)]
                     ? 1
                     : 0;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

QuantEvalResult evaluate_quantized(SmallEpitomeNet& model,
                                   const Dataset& dataset,
                                   const QuantConfig& config) {
  const std::vector<Tensor> snapshot = model.snapshot_weights();
  const auto impact = model.quantize_weights(config);
  QuantEvalResult result;
  result.accuracy = evaluate_model(model, dataset);
  result.weighted_mse = impact.weighted_mse;
  result.weight_power = impact.weight_power;
  model.restore_weights(snapshot);
  return result;
}

}  // namespace epim
