// Synthetic image-classification dataset (the "ImageNet proxy" of
// DESIGN.md's substitution table).
//
// Each class is a random smooth template image; samples are the template
// under a random integer shift plus Gaussian pixel noise. The task is easy
// enough for a small CNN to learn to high accuracy in a few epochs, yet rich
// enough that quantizing the trained weights degrades accuracy measurably --
// which is what the Table-2 trend experiments need.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace epim {

struct SyntheticSpec {
  int num_classes = 8;
  std::int64_t image_size = 16;
  std::int64_t channels = 3;
  int train_per_class = 48;
  int test_per_class = 16;
  float noise = 0.35f;
  int max_shift = 2;
  std::uint64_t seed = 0xDA7A'5E7u;
};

struct Dataset {
  Tensor images;            ///< (N, C, H, W)
  std::vector<int> labels;  ///< size N

  std::int64_t size() const { return images.empty() ? 0 : images.dim(0); }

  /// View of one sample as a (C, H, W) tensor (copies the slice).
  Tensor sample(std::int64_t i) const;
};

struct SyntheticData {
  Dataset train;
  Dataset test;
  int num_classes = 0;
};

SyntheticData make_synthetic_data(const SyntheticSpec& spec);

}  // namespace epim
