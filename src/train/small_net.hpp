// A small epitome-CNN for the accuracy-trend experiments.
//
// Architecture (input C x S x S):
//   conv3x3(C->16) - BN - ReLU
//   [epitome|conv]3x3(16->32) - BN - ReLU - maxpool2
//   [epitome|conv]3x3(32->64) - BN - ReLU - maxpool2
//   GAP - dense(64->K)
//
// With use_epitome the two middle blocks use epitomes at ~2.25x parameter
// compression (matching the paper's whole-model epitome compression), so
// quantization/pruning experiments on this net exercise the same operator
// the paper deploys, end to end with real training.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "quant/epitome_quant.hpp"
#include "train/layers.hpp"

namespace epim {

struct SmallNetConfig {
  int num_classes = 8;
  std::int64_t image_size = 16;
  std::int64_t in_channels = 3;
  bool use_epitome = true;
  bool wrap_output = false;   ///< channel wrapping on the epitome layers
  std::uint64_t seed = 0x5AA17'17E7u;
};

class SmallEpitomeNet {
 public:
  explicit SmallEpitomeNet(const SmallNetConfig& config);

  const SmallNetConfig& config() const { return config_; }

  /// (N, C, S, S) -> logits (N, K).
  Tensor forward(const Tensor& x, bool train);

  void zero_grad();
  void step(float lr, float momentum, float weight_decay);

  /// Backprop from the loss gradient on logits.
  void backward(const Tensor& grad_logits);

  /// Trainable epitome layers (empty when use_epitome is false).
  std::vector<EpitomeConvLayer*> epitome_layers();

  /// Total learnable weight parameters (conv/epitome + dense).
  std::int64_t weight_parameters() const;

  /// Fake-quantize every epitome/conv weight tensor in place with the given
  /// scheme; returns the aggregate repetition-weighted MSE and weight power.
  struct QuantizationImpact {
    double weighted_mse = 0.0;
    double weight_power = 0.0;
  };
  QuantizationImpact quantize_weights(const QuantConfig& config);

  /// Snapshot/restore all trainable weights (for quantize -> eval -> undo).
  std::vector<Tensor> snapshot_weights() const;
  void restore_weights(const std::vector<Tensor>& snapshot);

  /// Everything the PIM runtime needs to execute this model on crossbars:
  /// per-block weights as epitomes (degenerate epitomes for plain convs),
  /// folded BatchNorm affines, and the float classifier head.
  struct Deploy {
    SmallNetConfig config;
    Epitome block1, block2, block3;   ///< conv/epitome weights per block
    ChannelAffine bn1, bn2, bn3;      ///< folded eval-mode BatchNorms
    Tensor dense_w;                   ///< (K, 64)
    Tensor dense_b;                   ///< (K)
  };
  Deploy deploy() const;

 private:
  SmallNetConfig config_;
  std::unique_ptr<Conv2dLayer> conv1_;
  BatchNorm2d bn1_;
  ReluLayer relu1_;
  std::unique_ptr<Conv2dLayer> conv2_;
  std::unique_ptr<EpitomeConvLayer> epi2_;
  BatchNorm2d bn2_;
  ReluLayer relu2_;
  MaxPool2dLayer pool2_;
  std::unique_ptr<Conv2dLayer> conv3_;
  std::unique_ptr<EpitomeConvLayer> epi3_;
  BatchNorm2d bn3_;
  ReluLayer relu3_;
  MaxPool2dLayer pool3_;
  GlobalAvgPoolLayer gap_;
  std::unique_ptr<DenseLayer> dense_;
};

}  // namespace epim
