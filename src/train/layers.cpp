#include "train/layers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace epim {

void SgdParam::init(Shape shape) {
  value = Tensor(shape);
  grad = Tensor(shape);
  velocity = Tensor(shape);
}

void SgdParam::zero_grad() { grad.fill(0.0f); }

void SgdParam::step(float lr, float momentum, float weight_decay) {
  float* v = velocity.data();
  float* w = value.data();
  const float* g = grad.data();
  for (std::int64_t i = 0; i < value.numel(); ++i) {
    v[i] = momentum * v[i] + g[i] + weight_decay * w[i];
    w[i] -= lr * v[i];
  }
}

namespace {

/// Shared conv forward given a (cout, ckk) weight matrix; caches im2col.
Tensor conv_forward(const Tensor& x, const Tensor& wmat, const ConvSpec& spec,
                    std::vector<Tensor>& cols_cache, bool keep_cache) {
  EPIM_CHECK(x.rank() == 4 && x.dim(1) == spec.in_channels,
             "conv forward expects (N, Cin, H, W) input");
  const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = conv_out_dim(h, spec.kernel_h, spec.stride,
                                       spec.pad);
  const std::int64_t ow = conv_out_dim(w, spec.kernel_w, spec.stride,
                                       spec.pad);
  const std::int64_t cout = spec.out_channels;
  Tensor out({n, cout, oh, ow});
  cols_cache.clear();
  for (std::int64_t i = 0; i < n; ++i) {
    Tensor img({spec.in_channels, h, w});
    std::copy(x.data() + i * spec.in_channels * h * w,
              x.data() + (i + 1) * spec.in_channels * h * w, img.data());
    Tensor cols = im2col(img, spec.kernel_h, spec.kernel_w, spec.stride,
                         spec.pad);                  // (pos, ckk)
    const Tensor om = matmul_nt(cols, wmat);         // (pos, cout)
    float* dst = out.data() + i * cout * oh * ow;
    for (std::int64_t p = 0; p < oh * ow; ++p) {
      for (std::int64_t c = 0; c < cout; ++c) {
        dst[c * oh * ow + p] = om.at(p * cout + c);
      }
    }
    if (keep_cache) cols_cache.push_back(std::move(cols));
  }
  return out;
}

/// Shared conv backward: accumulates grad_wmat (cout, ckk) and returns
/// grad_in (N, Cin, H, W).
Tensor conv_backward(const Tensor& grad_out, const Tensor& wmat,
                     const ConvSpec& spec,
                     const std::vector<Tensor>& cols_cache, std::int64_t in_h,
                     std::int64_t in_w, Tensor& grad_wmat) {
  const std::int64_t n = grad_out.dim(0), cout = grad_out.dim(1);
  const std::int64_t oh = grad_out.dim(2), ow = grad_out.dim(3);
  EPIM_CHECK(static_cast<std::int64_t>(cols_cache.size()) == n,
             "conv backward requires caches from a training forward pass");
  Tensor grad_in({n, spec.in_channels, in_h, in_w});
  for (std::int64_t i = 0; i < n; ++i) {
    // g as (cout, pos) is the native layout of the output slice.
    Tensor gmat({cout, oh * ow});
    std::copy(grad_out.data() + i * cout * oh * ow,
              grad_out.data() + (i + 1) * cout * oh * ow, gmat.data());
    const Tensor& cols = cols_cache[static_cast<std::size_t>(i)];
    const Tensor gw = matmul(gmat, cols);  // (cout, ckk)
    add_inplace(grad_wmat, gw);
    const Tensor gcols = matmul(transpose2d(gmat), wmat);  // (pos, ckk)
    const Tensor gimg = col2im(gcols, spec.in_channels, in_h, in_w,
                               spec.kernel_h, spec.kernel_w, spec.stride,
                               spec.pad);
    std::copy(gimg.data(), gimg.data() + gimg.numel(),
              grad_in.data() + i * spec.in_channels * in_h * in_w);
  }
  return grad_in;
}

}  // namespace

Conv2dLayer::Conv2dLayer(ConvSpec spec, Rng& rng) : spec_(spec) {
  weight_.init({spec.out_channels, spec.in_channels, spec.kernel_h,
                spec.kernel_w});
  const double fan_in = static_cast<double>(spec.in_channels *
                                            spec.kernel_h * spec.kernel_w);
  rng.fill_normal(weight_.value.data(),
                  static_cast<std::size_t>(weight_.value.numel()), 0.0f,
                  static_cast<float>(std::sqrt(2.0 / fan_in)));
}

Tensor Conv2dLayer::forward(const Tensor& x, bool train) {
  in_h_ = x.dim(2);
  in_w_ = x.dim(3);
  const Tensor wmat = weight_.value.reshaped(
      {spec_.out_channels, spec_.unrolled_rows()});
  return conv_forward(x, wmat, spec_, cols_cache_, train);
}

Tensor Conv2dLayer::backward(const Tensor& grad_out) {
  const Tensor wmat = weight_.value.reshaped(
      {spec_.out_channels, spec_.unrolled_rows()});
  Tensor gw({spec_.out_channels, spec_.unrolled_rows()});
  Tensor grad_in = conv_backward(grad_out, wmat, spec_, cols_cache_, in_h_,
                                 in_w_, gw);
  add_inplace(weight_.grad,
              gw.reshaped(weight_.grad.shape()));
  return grad_in;
}

EpitomeConvLayer::EpitomeConvLayer(EpitomeSpec spec, ConvSpec conv, Rng& rng)
    : epitome_(Epitome::random(spec, conv, rng)) {
  weight_.init(epitome_.weights().shape());
  weight_.value = epitome_.weights();
}

Tensor EpitomeConvLayer::forward(const Tensor& x, bool train) {
  in_h_ = x.dim(2);
  in_w_ = x.dim(3);
  epitome_.weights() = weight_.value;  // keep views consistent
  const ConvSpec& conv = epitome_.conv();
  const Tensor recon = epitome_.reconstruct();
  const Tensor wmat = recon.reshaped(
      {conv.out_channels, conv.unrolled_rows()});
  return conv_forward(x, wmat, conv, cols_cache_, train);
}

Tensor EpitomeConvLayer::backward(const Tensor& grad_out) {
  const ConvSpec& conv = epitome_.conv();
  const Tensor recon = epitome_.reconstruct();
  const Tensor wmat = recon.reshaped(
      {conv.out_channels, conv.unrolled_rows()});
  Tensor gw({conv.out_channels, conv.unrolled_rows()});
  Tensor grad_in = conv_backward(grad_out, wmat, conv, cols_cache_, in_h_,
                                 in_w_, gw);
  // Fold the reconstructed-weight gradient back onto the epitome cells.
  const Tensor folded = epitome_.fold_gradient(gw.reshaped(
      {conv.out_channels, conv.in_channels, conv.kernel_h, conv.kernel_w}));
  add_inplace(weight_.grad, folded);
  return grad_in;
}

void EpitomeConvLayer::step(float lr, float momentum, float wd) {
  weight_.step(lr, momentum, wd);
  epitome_.weights() = weight_.value;
}

void EpitomeConvLayer::restore_weights(const Tensor& snapshot) {
  EPIM_CHECK(snapshot.shape() == weight_.value.shape(),
             "snapshot shape mismatch");
  weight_.value = snapshot;
  epitome_.weights() = snapshot;
}

BatchNorm2d::BatchNorm2d(std::int64_t channels) : channels_(channels) {
  gamma_.init({channels});
  beta_.init({channels});
  gamma_.value.fill(1.0f);
  running_mean_ = Tensor({channels});
  running_var_ = Tensor({channels}, 1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& x, bool train) {
  EPIM_CHECK(x.rank() == 4 && x.dim(1) == channels_,
             "batchnorm expects (N, C, H, W) with matching channels");
  const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::int64_t plane = h * w;
  const double count = static_cast<double>(n * plane);
  Tensor out(x.shape());
  xhat_ = Tensor(x.shape());
  inv_std_.assign(static_cast<std::size_t>(channels_), 0.0);
  for (std::int64_t c = 0; c < channels_; ++c) {
    double mean, var;
    if (train) {
      double sum = 0.0, sq = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* p = x.data() + (i * channels_ + c) * plane;
        for (std::int64_t j = 0; j < plane; ++j) {
          sum += p[j];
          sq += static_cast<double>(p[j]) * p[j];
        }
      }
      mean = sum / count;
      var = std::max(0.0, sq / count - mean * mean);
      running_mean_(c) = static_cast<float>(
          (1.0 - momentum_) * running_mean_(c) + momentum_ * mean);
      running_var_(c) = static_cast<float>(
          (1.0 - momentum_) * running_var_(c) + momentum_ * var);
    } else {
      mean = running_mean_(c);
      var = running_var_(c);
    }
    const double inv = 1.0 / std::sqrt(var + eps_);
    inv_std_[static_cast<std::size_t>(c)] = inv;
    const float g = gamma_.value(c), b = beta_.value(c);
    for (std::int64_t i = 0; i < n; ++i) {
      const float* p = x.data() + (i * channels_ + c) * plane;
      float* xh = xhat_.data() + (i * channels_ + c) * plane;
      float* o = out.data() + (i * channels_ + c) * plane;
      for (std::int64_t j = 0; j < plane; ++j) {
        xh[j] = static_cast<float>((p[j] - mean) * inv);
        o[j] = g * xh[j] + b;
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  EPIM_CHECK(grad_out.shape() == xhat_.shape(),
             "batchnorm backward shape mismatch");
  const std::int64_t n = grad_out.dim(0), h = grad_out.dim(2),
                     w = grad_out.dim(3);
  const std::int64_t plane = h * w;
  const double count = static_cast<double>(n * plane);
  Tensor grad_in(grad_out.shape());
  for (std::int64_t c = 0; c < channels_; ++c) {
    double sum_g = 0.0, sum_gx = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const float* g = grad_out.data() + (i * channels_ + c) * plane;
      const float* xh = xhat_.data() + (i * channels_ + c) * plane;
      for (std::int64_t j = 0; j < plane; ++j) {
        sum_g += g[j];
        sum_gx += static_cast<double>(g[j]) * xh[j];
      }
    }
    gamma_.grad(c) += static_cast<float>(sum_gx);
    beta_.grad(c) += static_cast<float>(sum_g);
    const double gamma = gamma_.value(c);
    const double inv = inv_std_[static_cast<std::size_t>(c)];
    for (std::int64_t i = 0; i < n; ++i) {
      const float* g = grad_out.data() + (i * channels_ + c) * plane;
      const float* xh = xhat_.data() + (i * channels_ + c) * plane;
      float* gi = grad_in.data() + (i * channels_ + c) * plane;
      for (std::int64_t j = 0; j < plane; ++j) {
        gi[j] = static_cast<float>(
            gamma * inv *
            (g[j] - sum_g / count - xh[j] * sum_gx / count));
      }
    }
  }
  return grad_in;
}

ChannelAffine BatchNorm2d::eval_affine() const {
  ChannelAffine affine;
  affine.scale.resize(static_cast<std::size_t>(channels_));
  affine.shift.resize(static_cast<std::size_t>(channels_));
  for (std::int64_t c = 0; c < channels_; ++c) {
    const double inv =
        1.0 / std::sqrt(static_cast<double>(running_var_(c)) + eps_);
    const double scale = static_cast<double>(gamma_.value(c)) * inv;
    affine.scale[static_cast<std::size_t>(c)] = static_cast<float>(scale);
    affine.shift[static_cast<std::size_t>(c)] = static_cast<float>(
        beta_.value(c) - scale * running_mean_(c));
  }
  return affine;
}

void BatchNorm2d::zero_grad() {
  gamma_.zero_grad();
  beta_.zero_grad();
}

void BatchNorm2d::step(float lr, float momentum, float wd) {
  gamma_.step(lr, momentum, 0.0f);  // no decay on norm parameters
  beta_.step(lr, momentum, 0.0f);
  (void)wd;
}

Tensor ReluLayer::forward(const Tensor& x, bool train) {
  Tensor out(x.shape());
  mask_.assign(static_cast<std::size_t>(x.numel()), false);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const bool pos = x.at(i) > 0.0f;
    mask_[static_cast<std::size_t>(i)] = pos;
    out.at(i) = pos ? x.at(i) : 0.0f;
  }
  (void)train;
  return out;
}

Tensor ReluLayer::backward(const Tensor& grad_out) {
  EPIM_CHECK(static_cast<std::size_t>(grad_out.numel()) == mask_.size(),
             "relu backward before forward");
  Tensor grad_in(grad_out.shape());
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    grad_in.at(i) = mask_[static_cast<std::size_t>(i)] ? grad_out.at(i) : 0.0f;
  }
  return grad_in;
}

Tensor MaxPool2dLayer::forward(const Tensor& x, bool train) {
  EPIM_CHECK(x.rank() == 4, "maxpool expects (N, C, H, W)");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = conv_out_dim(h, k_, stride_, 0);
  const std::int64_t ow = conv_out_dim(w, k_, stride_, 0);
  in_shape_ = x.shape();
  Tensor out({n, c, oh, ow});
  argmax_.assign(static_cast<std::size_t>(out.numel()), 0);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const float* src = x.data() + (i * c + ci) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (std::int64_t ky = 0; ky < k_; ++ky) {
            for (std::int64_t kx = 0; kx < k_; ++kx) {
              const std::int64_t iy = oy * stride_ + ky;
              const std::int64_t ix = ox * stride_ + kx;
              const float v = src[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = iy * w + ix;
              }
            }
          }
          const std::int64_t o = ((i * c + ci) * oh + oy) * ow + ox;
          out.at(o) = best;
          argmax_[static_cast<std::size_t>(o)] =
              (i * c + ci) * h * w + best_idx;
        }
      }
    }
  }
  (void)train;
  return out;
}

Tensor MaxPool2dLayer::backward(const Tensor& grad_out) {
  Tensor grad_in(in_shape_);
  for (std::int64_t o = 0; o < grad_out.numel(); ++o) {
    grad_in.at(argmax_[static_cast<std::size_t>(o)]) += grad_out.at(o);
  }
  return grad_in;
}

Tensor GlobalAvgPoolLayer::forward(const Tensor& x, bool train) {
  EPIM_CHECK(x.rank() == 4, "gap expects (N, C, H, W)");
  in_shape_ = x.shape();
  const std::int64_t n = x.dim(0), c = x.dim(1), plane = x.dim(2) * x.dim(3);
  Tensor out({n, c});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const float* p = x.data() + (i * c + ci) * plane;
      double acc = 0.0;
      for (std::int64_t j = 0; j < plane; ++j) acc += p[j];
      out(i, ci) = static_cast<float>(acc / static_cast<double>(plane));
    }
  }
  (void)train;
  return out;
}

Tensor GlobalAvgPoolLayer::backward(const Tensor& grad_out) {
  const std::int64_t n = in_shape_[0], c = in_shape_[1],
                     plane = in_shape_[2] * in_shape_[3];
  Tensor grad_in(in_shape_);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const float g = grad_out(i, ci) / static_cast<float>(plane);
      float* p = grad_in.data() + (i * c + ci) * plane;
      for (std::int64_t j = 0; j < plane; ++j) p[j] = g;
    }
  }
  return grad_in;
}

DenseLayer::DenseLayer(std::int64_t in_features, std::int64_t out_features,
                       Rng& rng)
    : in_f_(in_features), out_f_(out_features) {
  weight_.init({out_features, in_features});
  bias_.init({out_features});
  rng.fill_normal(weight_.value.data(),
                  static_cast<std::size_t>(weight_.value.numel()), 0.0f,
                  static_cast<float>(std::sqrt(2.0 /
                                               static_cast<double>(in_f_))));
}

Tensor DenseLayer::forward(const Tensor& x, bool train) {
  EPIM_CHECK(x.rank() == 2 && x.dim(1) == in_f_,
             "dense expects (N, in_features)");
  if (train) input_cache_ = x;
  Tensor out = matmul_nt(x, weight_.value);  // (N, K)
  for (std::int64_t i = 0; i < out.dim(0); ++i) {
    for (std::int64_t k = 0; k < out_f_; ++k) out(i, k) += bias_.value(k);
  }
  return out;
}

Tensor DenseLayer::backward(const Tensor& grad_out) {
  EPIM_CHECK(!input_cache_.empty(), "dense backward before training forward");
  // grad_w (K, F) = grad_out^T (K, N) x input (N, F).
  add_inplace(weight_.grad, matmul(transpose2d(grad_out), input_cache_));
  for (std::int64_t i = 0; i < grad_out.dim(0); ++i) {
    for (std::int64_t k = 0; k < out_f_; ++k) {
      bias_.grad(k) += grad_out(i, k);
    }
  }
  return matmul(grad_out, weight_.value);  // (N, F)
}

void DenseLayer::zero_grad() {
  weight_.zero_grad();
  bias_.zero_grad();
}

void DenseLayer::step(float lr, float momentum, float wd) {
  weight_.step(lr, momentum, wd);
  bias_.step(lr, momentum, 0.0f);
}

SoftmaxLoss softmax_cross_entropy(const Tensor& logits,
                                  const std::vector<int>& labels) {
  EPIM_CHECK(logits.rank() == 2, "softmax expects (N, K) logits");
  const std::int64_t n = logits.dim(0), k = logits.dim(1);
  EPIM_CHECK(static_cast<std::int64_t>(labels.size()) == n,
             "one label per sample required");
  SoftmaxLoss result;
  result.grad = Tensor(logits.shape());
  result.predicted.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * k;
    float mx = row[0];
    std::int64_t arg = 0;
    for (std::int64_t j = 1; j < k; ++j) {
      if (row[j] > mx) {
        mx = row[j];
        arg = j;
      }
    }
    result.predicted[static_cast<std::size_t>(i)] = static_cast<int>(arg);
    double z = 0.0;
    for (std::int64_t j = 0; j < k; ++j) z += std::exp(row[j] - mx);
    const int y = labels[static_cast<std::size_t>(i)];
    EPIM_CHECK(y >= 0 && y < k, "label out of range");
    result.loss += -(row[y] - mx - std::log(z)) / static_cast<double>(n);
    for (std::int64_t j = 0; j < k; ++j) {
      const double p = std::exp(row[j] - mx) / z;
      result.grad(i, j) = static_cast<float>(
          (p - (j == y ? 1.0 : 0.0)) / static_cast<double>(n));
    }
  }
  return result;
}

}  // namespace epim
