#include "prune/pim_prune.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "pim/mapping.hpp"

namespace epim {

const char* prune_granularity_name(PruneGranularity granularity) {
  switch (granularity) {
    case PruneGranularity::kElement:
      return "element";
    case PruneGranularity::kCrossbarRow:
      return "crossbar-row";
    case PruneGranularity::kCrossbarCol:
      return "crossbar-col";
    case PruneGranularity::kCrossbarBlock:
      return "crossbar-block";
  }
  return "?";
}

namespace {

/// Zero the lowest-|w| elements until `ratio` of all entries are zero.
void prune_elements(Tensor& m, double ratio) {
  const std::int64_t n = m.numel();
  const std::int64_t keep = n - static_cast<std::int64_t>(
                                    std::floor(ratio * static_cast<double>(n)));
  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(),
                   order.begin() + static_cast<std::ptrdiff_t>(n - keep),
                   order.end(), [&](std::int64_t a, std::int64_t b) {
                     return std::abs(m.at(a)) < std::abs(m.at(b));
                   });
  for (std::int64_t i = 0; i < n - keep; ++i) {
    m.at(order[static_cast<std::size_t>(i)]) = 0.0f;
  }
}

/// L1 norms of row/column groups of a (rows x cols) matrix.
std::vector<double> group_norms(const Tensor& m, bool by_row) {
  const std::int64_t rows = m.dim(0), cols = m.dim(1);
  std::vector<double> norms(static_cast<std::size_t>(by_row ? rows : cols),
                            0.0);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      norms[static_cast<std::size_t>(by_row ? r : c)] +=
          std::abs(static_cast<double>(m(r, c)));
    }
  }
  return norms;
}

/// Zero the lowest-norm groups; returns surviving group count.
std::int64_t prune_groups(Tensor& m, bool by_row, double ratio) {
  const std::int64_t rows = m.dim(0), cols = m.dim(1);
  const std::int64_t n_groups = by_row ? rows : cols;
  const std::int64_t n_prune =
      static_cast<std::int64_t>(std::floor(ratio *
                                           static_cast<double>(n_groups)));
  std::vector<double> norms = group_norms(m, by_row);
  std::vector<std::int64_t> order(static_cast<std::size_t>(n_groups));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int64_t a, std::int64_t b) {
    return norms[static_cast<std::size_t>(a)] <
           norms[static_cast<std::size_t>(b)];
  });
  for (std::int64_t i = 0; i < n_prune; ++i) {
    const std::int64_t g = order[static_cast<std::size_t>(i)];
    if (by_row) {
      for (std::int64_t c = 0; c < cols; ++c) m(g, c) = 0.0f;
    } else {
      for (std::int64_t r = 0; r < rows; ++r) m(r, g) = 0.0f;
    }
  }
  return n_groups - n_prune;
}

/// Zero the lowest-norm (xbar_rows x xbar_cols) blocks.
void prune_blocks(Tensor& m, double ratio, std::int64_t br, std::int64_t bc) {
  const std::int64_t rows = m.dim(0), cols = m.dim(1);
  const std::int64_t nbr = ceil_div(rows, br), nbc = ceil_div(cols, bc);
  const std::int64_t n_blocks = nbr * nbc;
  const std::int64_t n_prune =
      static_cast<std::int64_t>(std::floor(ratio *
                                           static_cast<double>(n_blocks)));
  std::vector<double> norms(static_cast<std::size_t>(n_blocks), 0.0);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      norms[static_cast<std::size_t>((r / br) * nbc + c / bc)] +=
          std::abs(static_cast<double>(m(r, c)));
    }
  }
  std::vector<std::int64_t> order(static_cast<std::size_t>(n_blocks));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int64_t a, std::int64_t b) {
    return norms[static_cast<std::size_t>(a)] <
           norms[static_cast<std::size_t>(b)];
  });
  std::vector<bool> dead(static_cast<std::size_t>(n_blocks), false);
  for (std::int64_t i = 0; i < n_prune; ++i) {
    dead[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = true;
  }
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      if (dead[static_cast<std::size_t>((r / br) * nbc + c / bc)]) {
        m(r, c) = 0.0f;
      }
    }
  }
}

}  // namespace

PruneResult prune_matrix(const Tensor& matrix, const PruneConfig& config) {
  EPIM_CHECK(matrix.rank() == 2, "prune_matrix expects a rank-2 tensor");
  EPIM_CHECK(config.ratio >= 0.0 && config.ratio < 1.0,
             "prune ratio must be in [0, 1)");
  PruneResult result;
  result.pruned = matrix;
  Tensor& m = result.pruned;
  switch (config.granularity) {
    case PruneGranularity::kElement:
      prune_elements(m, config.ratio);
      break;
    case PruneGranularity::kCrossbarRow:
      prune_groups(m, /*by_row=*/true, config.ratio);
      break;
    case PruneGranularity::kCrossbarCol:
      prune_groups(m, /*by_row=*/false, config.ratio);
      break;
    case PruneGranularity::kCrossbarBlock:
      prune_blocks(m, config.ratio, config.xbar_rows, config.xbar_cols);
      break;
  }
  // Bookkeeping: achieved sparsity, removed energy, surviving rows/cols.
  double total_energy = 0.0, kept_energy = 0.0;
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < matrix.numel(); ++i) {
    const double v = matrix.at(i);
    total_energy += v * v;
    if (m.at(i) == 0.0f) {
      ++zeros;
    } else {
      kept_energy += v * v;
    }
  }
  result.achieved_ratio =
      static_cast<double>(zeros) / static_cast<double>(matrix.numel());
  result.removed_energy_fraction =
      total_energy > 0.0 ? 1.0 - kept_energy / total_energy : 0.0;
  const std::int64_t rows = m.dim(0), cols = m.dim(1);
  result.remaining_rows = 0;
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      if (m(r, c) != 0.0f) {
        ++result.remaining_rows;
        break;
      }
    }
  }
  result.remaining_cols = 0;
  for (std::int64_t c = 0; c < cols; ++c) {
    for (std::int64_t r = 0; r < rows; ++r) {
      if (m(r, c) != 0.0f) {
        ++result.remaining_cols;
        break;
      }
    }
  }
  return result;
}

NetworkPruneReport pim_prune_network(const Network& network,
                                     const PruneConfig& config,
                                     const CrossbarConfig& xbar,
                                     int weight_bits, std::uint64_t seed) {
  Rng rng(seed);
  NetworkPruneReport report;
  std::int64_t params_before = 0, params_after = 0;
  double energy_removed_weighted = 0.0, energy_total = 0.0;
  for (const auto& layer : network.weighted_layers()) {
    const std::int64_t rows = layer.conv.unrolled_rows();
    const std::int64_t cols = layer.conv.unrolled_cols();
    Tensor w({rows, cols});
    const float stddev =
        static_cast<float>(std::sqrt(2.0 / static_cast<double>(rows)));
    rng.fill_normal(w.data(), static_cast<std::size_t>(w.numel()), 0.0f,
                    stddev);
    const PruneResult pr = prune_matrix(w, config);
    params_before += w.numel();
    params_after += w.numel() - static_cast<std::int64_t>(
                                    pr.achieved_ratio *
                                    static_cast<double>(w.numel()) + 0.5);
    const double layer_energy = static_cast<double>(w.numel());
    energy_removed_weighted += pr.removed_energy_fraction * layer_energy;
    energy_total += layer_energy;
    report.crossbars_before +=
        map_weight_matrix(rows, cols, weight_bits, xbar).num_crossbars;
    // Structured pruning frees crossbars through the surviving rows/cols;
    // element pruning does not change the crossbar footprint.
    const std::int64_t eff_rows =
        config.granularity == PruneGranularity::kElement
            ? rows
            : std::max<std::int64_t>(1, pr.remaining_rows);
    const std::int64_t eff_cols =
        config.granularity == PruneGranularity::kElement
            ? cols
            : std::max<std::int64_t>(1, pr.remaining_cols);
    report.crossbars_after +=
        map_weight_matrix(eff_rows, eff_cols, weight_bits, xbar)
            .num_crossbars;
  }
  report.parameter_compression = static_cast<double>(params_before) /
                                 static_cast<double>(std::max<std::int64_t>(
                                     1, params_after));
  report.crossbar_compression =
      static_cast<double>(report.crossbars_before) /
      static_cast<double>(std::max<std::int64_t>(1, report.crossbars_after));
  report.removed_energy_fraction = energy_removed_weighted / energy_total;
  return report;
}

}  // namespace epim
