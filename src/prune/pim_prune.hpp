// Reproduction of the PIM-Prune baseline (Chu et al., DAC 2020) used by the
// paper for comparison (Tables 1 and 3), plus the element pruning combined
// with epitomes in the paper's Sec. 7.2 ablation.
//
// PIM-Prune's key idea: pruning only saves crossbar *area* when whole word
// lines / bit lines (or whole crossbar blocks) become free, so the pruning
// pattern must be structured at crossbar granularity. We implement
// magnitude-based pruning at four granularities:
//  * kElement       -- unstructured; compresses parameters, not crossbars
//                      (used for the epitome+pruning combination);
//  * kCrossbarRow   -- removes whole rows of the unrolled weight matrix;
//  * kCrossbarCol   -- removes whole logical columns (output channels);
//  * kCrossbarBlock -- removes whole 128x128 crossbar tiles.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "nn/network.hpp"
#include "pim/config.hpp"
#include "tensor/tensor.hpp"

namespace epim {

enum class PruneGranularity { kElement, kCrossbarRow, kCrossbarCol,
                              kCrossbarBlock };

const char* prune_granularity_name(PruneGranularity granularity);

struct PruneConfig {
  double ratio = 0.5;  ///< target fraction of weights removed
  PruneGranularity granularity = PruneGranularity::kCrossbarRow;
  std::int64_t xbar_rows = 128;
  std::int64_t xbar_cols = 128;
};

/// Result of pruning one weight matrix / tensor.
struct PruneResult {
  Tensor pruned;                        ///< same shape, pruned entries zeroed
  double achieved_ratio = 0.0;          ///< zeroed weights / total
  double removed_energy_fraction = 0.0; ///< pruned L2^2 / total L2^2
  std::int64_t remaining_rows = 0;      ///< surviving matrix rows
  std::int64_t remaining_cols = 0;      ///< surviving logical columns
};

/// Magnitude-prune a (rows x cols) logical weight matrix stored as a rank-2
/// tensor. Structured granularities remove the lowest-L1 groups; the element
/// granularity removes the smallest-magnitude entries globally.
PruneResult prune_matrix(const Tensor& matrix, const PruneConfig& config);

/// Whole-network PIM-Prune evaluation with synthetic (seeded Gaussian)
/// weights, as used by the Table 1/3 benches.
struct NetworkPruneReport {
  double parameter_compression = 0.0;   ///< params / surviving params
  double crossbar_compression = 0.0;    ///< XBs / surviving XBs
  double removed_energy_fraction = 0.0; ///< weight-energy-weighted average
  std::int64_t crossbars_before = 0;
  std::int64_t crossbars_after = 0;
};

NetworkPruneReport pim_prune_network(const Network& network,
                                     const PruneConfig& config,
                                     const CrossbarConfig& xbar,
                                     int weight_bits, std::uint64_t seed);

}  // namespace epim
