// The sampler tau of the epitome operator (paper Eq. 1).
//
// An epitome reconstructs a convolution by repeatedly sampling patches:
// each patch covers a (kh x kw) spatial window of the epitome at some offset
// and a contiguous range of epitome input/output channels, and is placed at a
// (input-channel-group, output-channel-group) position of the virtual
// convolution tensor. The ordered list of patches is the *sample plan*; it
// determines both the reconstruction and the crossbar activation schedule
// (each non-replicated patch is one activation round of the PIM crossbars).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace epim {

/// Dimensions and sampling policy of an epitome tensor.
///
/// The epitome weight tensor has shape (cout_e, cin_e, p, q). The paper's
/// product notation "1024 x 256" means rows() = cin_e*p*q = 1024 and
/// cout_e = 256.
struct EpitomeSpec {
  std::int64_t p = 0;        ///< epitome spatial height (>= kernel_h)
  std::int64_t q = 0;        ///< epitome spatial width  (>= kernel_w)
  std::int64_t cin_e = 0;    ///< epitome input channels
  std::int64_t cout_e = 0;   ///< epitome output channels
  /// Stride through the spatial-offset space when assigning offsets to
  /// successive patches. 1 walks every offset; larger values skip.
  std::int64_t offset_stride = 1;
  /// Output channel wrapping (paper Sec. 5.3): when true, all output-channel
  /// groups reuse the same patch, so the reconstructed weights (and the OFM)
  /// are translation-invariant along output channels with period cout_e, and
  /// only one group's crossbar activations are actually performed.
  bool wrap_output = false;

  /// Word lines occupied when mapped (cin_e * p * q).
  std::int64_t rows() const { return cin_e * p * q; }
  /// Learnable parameter count.
  std::int64_t weight_count() const { return rows() * cout_e; }

  /// True if this spec can reconstruct the given convolution.
  bool compatible_with(const ConvSpec& conv) const;

  /// Readable form, e.g. "1024x256 (cin_e=64,p=4,q=4)".
  std::string to_string() const;

  bool operator==(const EpitomeSpec&) const = default;
};

/// One sampled patch: where it reads in the epitome and where it lands in the
/// virtual convolution.
struct PatchSample {
  std::int64_t round = 0;      ///< activation round (order of execution)
  std::int64_t in_group = 0;   ///< input-channel group index
  std::int64_t out_group = 0;  ///< output-channel group index
  std::int64_t ci_begin = 0;   ///< first conv input channel covered
  std::int64_t ci_len = 0;     ///< input channels covered (<= cin_e)
  std::int64_t co_begin = 0;   ///< first conv output channel covered
  std::int64_t co_len = 0;     ///< output channels covered (<= cout_e)
  std::int64_t off_p = 0;      ///< spatial offset into the epitome (rows)
  std::int64_t off_q = 0;      ///< spatial offset into the epitome (cols)
  /// True when this patch's result is obtained by channel-wrapping reuse of
  /// an earlier round instead of a crossbar activation.
  bool replicated = false;
};

/// The full sampling schedule for one (epitome, convolution) pair.
class SamplePlan {
 public:
  SamplePlan(const EpitomeSpec& spec, const ConvSpec& conv);

  const EpitomeSpec& spec() const { return spec_; }
  const ConvSpec& conv() const { return conv_; }
  const std::vector<PatchSample>& samples() const { return samples_; }

  std::int64_t num_in_groups() const { return n_in_; }
  std::int64_t num_out_groups() const { return n_out_; }

  /// Patches that require a crossbar activation (excludes wrapped replicas).
  std::int64_t active_rounds() const { return active_rounds_; }

  /// All patches, including replicas resolved by the joint module.
  std::int64_t total_patches() const {
    return static_cast<std::int64_t>(samples_.size());
  }

  /// Channel-wrapping replication factor r (1 when wrapping is disabled).
  std::int64_t wrap_factor() const { return wrap_factor_; }

 private:
  EpitomeSpec spec_;
  ConvSpec conv_;
  std::vector<PatchSample> samples_;
  std::int64_t n_in_ = 0;
  std::int64_t n_out_ = 0;
  std::int64_t active_rounds_ = 0;
  std::int64_t wrap_factor_ = 1;
};

}  // namespace epim
