#include "core/designer.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace epim {

namespace {

/// Choose epitome dimensions hitting ~target_rows word lines for a kernel of
/// (kh, kw), preferring crossbar-aligned row counts (Sec. 4.1: cin_e*p*q and
/// cout_e should be integral multiples of the crossbar size when possible).
EpitomeSpec shape_for_target(const ConvSpec& conv, std::int64_t target_rows,
                             std::int64_t target_cout,
                             std::int64_t crossbar_size,
                             std::int64_t spatial_slack, bool wrap) {
  EpitomeSpec spec;
  spec.wrap_output = wrap;
  // Spatial extent: add slack above the kernel so patches overlap; pointwise
  // kernels have no spatial structure to share, so p = q = 1.
  spec.p = conv.kernel_h > 1 ? conv.kernel_h + spatial_slack : 1;
  spec.q = conv.kernel_w > 1 ? conv.kernel_w + spatial_slack : 1;
  const std::int64_t plane = spec.p * spec.q;
  // Fill the row budget with input channels, clamped to the conv's channels.
  spec.cin_e = std::clamp<std::int64_t>(target_rows / plane, 1,
                                        conv.in_channels);
  spec.cout_e = std::min<std::int64_t>(target_cout, conv.out_channels);
  // Align the row count down to a crossbar multiple when doing so keeps at
  // least one full crossbar row block; partial-row epitomes waste word lines.
  const std::int64_t rows = spec.rows();
  if (rows > crossbar_size && rows % crossbar_size != 0) {
    const std::int64_t aligned_cin =
        (rows / crossbar_size) * crossbar_size / plane;
    if (aligned_cin >= 1 && aligned_cin * plane % crossbar_size == 0) {
      spec.cin_e = std::min(aligned_cin, conv.in_channels);
    }
  }
  return spec;
}

}  // namespace

std::optional<EpitomeSpec> design_uniform(const ConvSpec& conv,
                                          const UniformDesign& policy) {
  EPIM_CHECK(policy.target_rows >= 1 && policy.target_cout >= 1,
             "uniform design targets must be positive");
  if (policy.skip_small_layers &&
      conv.unrolled_rows() <= policy.target_rows &&
      conv.out_channels <= policy.target_cout) {
    return std::nullopt;
  }
  EpitomeSpec spec =
      shape_for_target(conv, policy.target_rows, policy.target_cout,
                       policy.crossbar_size, policy.spatial_slack,
                       policy.wrap_output);
  // Only use the epitome if it actually compresses the layer.
  if (spec.weight_count() >= conv.weight_count()) return std::nullopt;
  EPIM_ASSERT(spec.compatible_with(conv), "designed spec must be compatible");
  return spec;
}

std::vector<std::optional<EpitomeSpec>> candidate_specs(
    const ConvSpec& conv, const CandidateConfig& config) {
  std::vector<std::optional<EpitomeSpec>> out;
  if (config.include_identity) out.push_back(std::nullopt);
  for (const std::int64_t rows : config.row_targets) {
    for (const std::int64_t cout : config.cout_targets) {
      EpitomeSpec spec = shape_for_target(conv, rows, cout,
                                          config.crossbar_size,
                                          config.spatial_slack,
                                          config.wrap_output);
      if (!spec.compatible_with(conv)) continue;
      if (spec.weight_count() >= conv.weight_count()) continue;
      if (std::find(out.begin(), out.end(),
                    std::optional<EpitomeSpec>(spec)) != out.end()) {
        continue;
      }
      out.push_back(spec);
    }
  }
  return out;
}

}  // namespace epim
