#include "core/assignment.hpp"

#include "common/check.hpp"

namespace epim {

NetworkAssignment NetworkAssignment::baseline(const Network& net) {
  std::vector<std::optional<EpitomeSpec>> choices(
      net.weighted_layers().size());
  return NetworkAssignment(net, std::move(choices));
}

NetworkAssignment NetworkAssignment::uniform(const Network& net,
                                             const UniformDesign& policy) {
  std::vector<std::optional<EpitomeSpec>> choices;
  for (const auto& layer : net.weighted_layers()) {
    choices.push_back(design_uniform(layer.conv, policy));
  }
  return NetworkAssignment(net, std::move(choices));
}

NetworkAssignment::NetworkAssignment(
    const Network& net, std::vector<std::optional<EpitomeSpec>> choices)
    : net_(&net), layers_(net.weighted_layers()), choices_(std::move(choices)) {
  EPIM_CHECK(choices_.size() == layers_.size(),
             "one choice per weighted layer required");
  for (std::size_t i = 0; i < choices_.size(); ++i) {
    if (choices_[i].has_value()) {
      EPIM_CHECK(choices_[i]->compatible_with(layers_[i].conv),
                 "epitome choice incompatible with layer " + layers_[i].name);
    }
  }
}

const std::optional<EpitomeSpec>& NetworkAssignment::choice(
    std::int64_t layer) const {
  EPIM_CHECK(layer >= 0 && layer < num_layers(), "layer index out of range");
  return choices_[static_cast<std::size_t>(layer)];
}

void NetworkAssignment::set_choice(std::int64_t layer,
                                   std::optional<EpitomeSpec> spec) {
  EPIM_CHECK(layer >= 0 && layer < num_layers(), "layer index out of range");
  if (spec.has_value()) {
    EPIM_CHECK(
        spec->compatible_with(layers_[static_cast<std::size_t>(layer)].conv),
        "epitome choice incompatible with layer");
  }
  choices_[static_cast<std::size_t>(layer)] = std::move(spec);
}

void NetworkAssignment::set_wrap_output(bool wrap) {
  for (auto& c : choices_) {
    if (c.has_value()) c->wrap_output = wrap;
  }
}

std::int64_t NetworkAssignment::total_weights() const {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < choices_.size(); ++i) {
    total += choices_[i].has_value() ? choices_[i]->weight_count()
                                     : layers_[i].conv.weight_count();
  }
  return total;
}

double NetworkAssignment::parameter_compression() const {
  std::int64_t base = 0;
  for (const auto& l : layers_) base += l.conv.weight_count();
  return static_cast<double>(base) / static_cast<double>(total_weights());
}

std::int64_t NetworkAssignment::num_epitome_layers() const {
  std::int64_t n = 0;
  for (const auto& c : choices_) n += c.has_value() ? 1 : 0;
  return n;
}

}  // namespace epim
