#include "core/sample_plan.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace epim {

bool EpitomeSpec::compatible_with(const ConvSpec& conv) const {
  return p >= conv.kernel_h && q >= conv.kernel_w && cin_e >= 1 &&
         cin_e <= conv.in_channels && cout_e >= 1 &&
         cout_e <= conv.out_channels && offset_stride >= 1;
}

std::string EpitomeSpec::to_string() const {
  std::ostringstream os;
  os << rows() << 'x' << cout_e << " (cin_e=" << cin_e << ",p=" << p
     << ",q=" << q << (wrap_output ? ",wrap" : "") << ')';
  return os.str();
}

SamplePlan::SamplePlan(const EpitomeSpec& spec, const ConvSpec& conv)
    : spec_(spec), conv_(conv) {
  EPIM_CHECK(spec.compatible_with(conv),
             "epitome " + spec.to_string() + " incompatible with conv");
  n_in_ = ceil_div(conv.in_channels, spec.cin_e);
  n_out_ = ceil_div(conv.out_channels, spec.cout_e);
  wrap_factor_ = spec.wrap_output ? n_out_ : 1;

  // Offsets available in the epitome's spatial plane. Patches walk this
  // offset grid with the configured stride; because a (kh x kw) window at
  // every offset covers the centre of the plane but only extreme offsets
  // reach the borders, centre weights are sampled more often -- the
  // repetition structure exploited by overlap-weighted quantization.
  const std::int64_t n_off_p = spec.p - conv.kernel_h + 1;
  const std::int64_t n_off_q = spec.q - conv.kernel_w + 1;
  const std::int64_t n_offsets = n_off_p * n_off_q;

  samples_.reserve(static_cast<std::size_t>(n_in_ * n_out_));
  std::vector<std::int64_t> source_round(static_cast<std::size_t>(n_in_), -1);
  std::int64_t round = 0;
  for (std::int64_t io = 0; io < n_out_; ++io) {
    for (std::int64_t ii = 0; ii < n_in_; ++ii) {
      PatchSample s;
      s.in_group = ii;
      s.out_group = io;
      s.ci_begin = ii * spec.cin_e;
      s.ci_len = std::min(spec.cin_e, conv.in_channels - s.ci_begin);
      s.co_begin = io * spec.cout_e;
      s.co_len = std::min(spec.cout_e, conv.out_channels - s.co_begin);
      // With wrapping, the offset depends only on the input group so every
      // output group sees identical weights (Eq. 8); otherwise each
      // (io, ii) pair gets its own offset, maximizing weight diversity.
      const std::int64_t t = spec.wrap_output ? ii : io * n_in_ + ii;
      const std::int64_t l = (t * spec.offset_stride) % n_offsets;
      s.off_p = l % n_off_p;
      s.off_q = l / n_off_p;
      s.replicated = spec.wrap_output && io > 0;
      if (s.replicated) {
        // A wrapped replica reuses the result of the round that computed the
        // same input group for output group 0.
        s.round = source_round[static_cast<std::size_t>(ii)];
        EPIM_ASSERT(s.round >= 0, "replica precedes its source round");
      } else {
        s.round = round++;
        if (io == 0) source_round[static_cast<std::size_t>(ii)] = s.round;
      }
      samples_.push_back(s);
    }
  }
  active_rounds_ = round;
  EPIM_ASSERT(active_rounds_ == (spec.wrap_output ? n_in_ : n_in_ * n_out_),
              "active round accounting mismatch");
}

}  // namespace epim
