// The epitome neural operator (paper Sec. 2.2, 4.1, 5.3).
//
// An Epitome owns a small learnable weight tensor of shape
// (cout_e, cin_e, p, q) plus the sample plan that reconstructs a full
// convolution weight tensor from it. Reconstruction, repetition counting
// (for overlap-weighted quantization) and gradient folding (for training
// through the reconstruction) are all driven by the same plan, so they are
// consistent by construction.
#pragma once

#include <cstdint>

#include "core/sample_plan.hpp"
#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace epim {

class Epitome {
 public:
  /// Creates an epitome with zero weights for the given convolution.
  Epitome(EpitomeSpec spec, ConvSpec conv);

  /// Creates an epitome with He-style random init (fan-in of the conv).
  static Epitome random(EpitomeSpec spec, ConvSpec conv, Rng& rng);

  /// Wraps an existing conv weight tensor as the degenerate epitome whose
  /// spec equals the convolution itself (single patch, no compression).
  static Epitome from_conv_weights(const ConvSpec& conv, Tensor weights);

  const EpitomeSpec& spec() const { return plan_.spec(); }
  const ConvSpec& conv() const { return plan_.conv(); }
  const SamplePlan& plan() const { return plan_; }

  Tensor& weights() { return weights_; }
  const Tensor& weights() const { return weights_; }

  /// Number of learnable parameters.
  std::int64_t weight_count() const { return weights_.numel(); }

  /// Parameter compression rate vs the reconstructed convolution.
  double compression_rate() const;

  /// Reconstruct the full (cout, cin, kh, kw) convolution weights.
  Tensor reconstruct() const;

  /// Count, for every epitome element, how many times it appears in the
  /// reconstructed convolution (shape = weights' shape). Centre elements of
  /// the spatial plane have higher counts when patches overlap.
  Tensor repetition_map() const;

  /// Scatter-add a conv-weight-shaped gradient back onto epitome parameters.
  /// This is the exact adjoint of reconstruct(): each conv element's gradient
  /// accumulates into the epitome element it was sampled from.
  Tensor fold_gradient(const Tensor& conv_grad) const;

 private:
  SamplePlan plan_;
  Tensor weights_;  // (cout_e, cin_e, p, q)
};

}  // namespace epim
