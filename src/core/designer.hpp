// Epitome designer (paper Sec. 3, 4.1, 5.2).
//
// Maps convolutions to epitome shapes. Three entry points:
//  * design_uniform     -- the paper's manual "1024 x 256" style policy,
//                          aligned to crossbar boundaries (Sec. 4.1);
//  * candidate_specs    -- the per-layer candidate set C explored by the
//                          evolutionary search (Sec. 5.2);
//  * design_network_*   -- apply a policy across a whole Network, producing
//                          a NetworkAssignment.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/sample_plan.hpp"
#include "nn/network.hpp"

namespace epim {

/// Policy parameters for uniform epitome design.
struct UniformDesign {
  /// Target word lines (cin_e * p * q), the "1024" of "1024 x 256".
  std::int64_t target_rows = 1024;
  /// Target epitome output channels, the "256" of "1024 x 256".
  std::int64_t target_cout = 256;
  /// Crossbar row/col count used for alignment (Sec. 4.1).
  std::int64_t crossbar_size = 128;
  /// Extra spatial extent added to each kernel dimension to create
  /// overlapping-patch structure (p = kh + spatial_slack for kh > 1).
  std::int64_t spatial_slack = 1;
  /// Enable output channel wrapping in the produced specs.
  bool wrap_output = false;
  /// Layers whose conv already fits within target_rows x target_cout keep
  /// their convolution (no epitome) when true.
  bool skip_small_layers = true;
};

/// Design one epitome spec for a convolution under the uniform policy.
/// Returns nullopt when the layer should keep its plain convolution (it is
/// already no larger than the target and skip_small_layers is set).
std::optional<EpitomeSpec> design_uniform(const ConvSpec& conv,
                                          const UniformDesign& policy);

/// Candidate generation parameters for evolutionary search.
struct CandidateConfig {
  std::vector<std::int64_t> row_targets = {256, 512, 1024, 2048};
  std::vector<std::int64_t> cout_targets = {64, 128, 256, 512};
  std::int64_t crossbar_size = 128;
  std::int64_t spatial_slack = 1;
  bool wrap_output = false;
  /// Also include "keep the convolution" as a candidate.
  bool include_identity = true;
};

/// Enumerate the candidate epitome shapes for one layer. Candidates that do
/// not compress the layer are dropped (except the identity candidate).
/// nullopt inside the result denotes "keep the convolution".
std::vector<std::optional<EpitomeSpec>> candidate_specs(
    const ConvSpec& conv, const CandidateConfig& config);

}  // namespace epim
