// A NetworkAssignment binds one epitome choice (or "keep the convolution")
// to every weighted layer of a Network. It is the genome manipulated by the
// evolutionary search and the unit the simulator evaluates.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/designer.hpp"
#include "core/sample_plan.hpp"
#include "nn/network.hpp"

namespace epim {

class NetworkAssignment {
 public:
  /// All layers keep their convolution (the ResNet baseline).
  static NetworkAssignment baseline(const Network& net);

  /// Apply a uniform design policy to every weighted layer.
  static NetworkAssignment uniform(const Network& net,
                                   const UniformDesign& policy);

  /// Build from an explicit per-layer choice vector (size must equal the
  /// number of weighted layers; each spec must be compatible).
  NetworkAssignment(const Network& net,
                    std::vector<std::optional<EpitomeSpec>> choices);

  const Network& network() const { return *net_; }
  std::int64_t num_layers() const {
    return static_cast<std::int64_t>(choices_.size());
  }

  const std::optional<EpitomeSpec>& choice(std::int64_t layer) const;
  void set_choice(std::int64_t layer, std::optional<EpitomeSpec> spec);

  /// The weighted layer specs (convs + fc) the choices refer to.
  const std::vector<ConvLayerInfo>& layers() const { return layers_; }

  /// Enable/disable output channel wrapping on every epitome layer.
  void set_wrap_output(bool wrap);

  /// Parameters with this assignment (epitome params where assigned,
  /// conv params elsewhere).
  std::int64_t total_weights() const;

  /// Parameter compression rate vs the all-convolution baseline.
  double parameter_compression() const;

  /// Number of layers that use an epitome.
  std::int64_t num_epitome_layers() const;

 private:
  const Network* net_ = nullptr;
  std::vector<ConvLayerInfo> layers_;
  std::vector<std::optional<EpitomeSpec>> choices_;
};

}  // namespace epim
