#include "core/epitome.hpp"

#include <cmath>

#include "common/check.hpp"

namespace epim {

Epitome::Epitome(EpitomeSpec spec, ConvSpec conv)
    : plan_(spec, conv),
      weights_({spec.cout_e, spec.cin_e, spec.p, spec.q}) {}

Epitome Epitome::random(EpitomeSpec spec, ConvSpec conv, Rng& rng) {
  Epitome e(spec, conv);
  const double fan_in =
      static_cast<double>(conv.in_channels * conv.kernel_h * conv.kernel_w);
  const float stddev = static_cast<float>(std::sqrt(2.0 / fan_in));
  rng.fill_normal(e.weights_.data(),
                  static_cast<std::size_t>(e.weights_.numel()), 0.0f, stddev);
  return e;
}

Epitome Epitome::from_conv_weights(const ConvSpec& conv, Tensor weights) {
  EPIM_CHECK(weights.rank() == 4 && weights.dim(0) == conv.out_channels &&
                 weights.dim(1) == conv.in_channels &&
                 weights.dim(2) == conv.kernel_h &&
                 weights.dim(3) == conv.kernel_w,
             "weights do not match conv spec");
  EpitomeSpec spec;
  spec.p = conv.kernel_h;
  spec.q = conv.kernel_w;
  spec.cin_e = conv.in_channels;
  spec.cout_e = conv.out_channels;
  Epitome e(spec, conv);
  e.weights_ = std::move(weights);
  return e;
}

double Epitome::compression_rate() const {
  return static_cast<double>(conv().weight_count()) /
         static_cast<double>(weight_count());
}

Tensor Epitome::reconstruct() const {
  const ConvSpec& c = conv();
  Tensor w({c.out_channels, c.in_channels, c.kernel_h, c.kernel_w});
  for (const PatchSample& s : plan_.samples()) {
    for (std::int64_t j = 0; j < s.co_len; ++j) {
      for (std::int64_t i = 0; i < s.ci_len; ++i) {
        for (std::int64_t y = 0; y < c.kernel_h; ++y) {
          for (std::int64_t x = 0; x < c.kernel_w; ++x) {
            w(s.co_begin + j, s.ci_begin + i, y, x) =
                weights_(j, i, s.off_p + y, s.off_q + x);
          }
        }
      }
    }
  }
  return w;
}

Tensor Epitome::repetition_map() const {
  const ConvSpec& c = conv();
  Tensor rep(weights_.shape(), 0.0f);
  for (const PatchSample& s : plan_.samples()) {
    for (std::int64_t j = 0; j < s.co_len; ++j) {
      for (std::int64_t i = 0; i < s.ci_len; ++i) {
        for (std::int64_t y = 0; y < c.kernel_h; ++y) {
          for (std::int64_t x = 0; x < c.kernel_w; ++x) {
            rep(j, i, s.off_p + y, s.off_q + x) += 1.0f;
          }
        }
      }
    }
  }
  return rep;
}

Tensor Epitome::fold_gradient(const Tensor& conv_grad) const {
  const ConvSpec& c = conv();
  EPIM_CHECK(conv_grad.rank() == 4 && conv_grad.dim(0) == c.out_channels &&
                 conv_grad.dim(1) == c.in_channels &&
                 conv_grad.dim(2) == c.kernel_h &&
                 conv_grad.dim(3) == c.kernel_w,
             "gradient shape does not match reconstructed convolution");
  Tensor grad(weights_.shape(), 0.0f);
  for (const PatchSample& s : plan_.samples()) {
    for (std::int64_t j = 0; j < s.co_len; ++j) {
      for (std::int64_t i = 0; i < s.ci_len; ++i) {
        for (std::int64_t y = 0; y < c.kernel_h; ++y) {
          for (std::int64_t x = 0; x < c.kernel_w; ++x) {
            grad(j, i, s.off_p + y, s.off_q + x) +=
                conv_grad(s.co_begin + j, s.ci_begin + i, y, x);
          }
        }
      }
    }
  }
  return grad;
}

}  // namespace epim
