// trace_export: drive a small serving workload with telemetry tracing armed
// and export the resulting per-request spans as chrome://tracing JSON.
//
//   ./build/tools/trace_export                  # writes trace.json
//   ./build/tools/trace_export --out my.json    # custom output path
//   ./build/tools/trace_export --metrics        # print the Prometheus text
//                                               # exposition to stdout instead
//
// Load the JSON at chrome://tracing or https://ui.perfetto.dev: each request
// renders as a "queue" slice (submit -> batch close) followed by a "run"
// slice (run begin -> run end) on its worker's track, so the queueing-vs-
// compute split of any slow request is visible at a glance.
//
// --metrics is also the CI hook: tools/check_metrics.py runs this binary and
// validates the live registry's exposition line-by-line against the
// Prometheus text grammar, so the scrape surface a real fleet monitor would
// poll is what gets checked -- not a synthetic fixture.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "pipeline/pipeline.hpp"
#include "serve/service.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "train/trainer.hpp"

namespace {

/// Train a tiny model, stand up a 2-worker service, and push a few bursts
/// through it so every serving metric family has live series.
void drive_workload() {
  using namespace epim;
  SyntheticSpec dspec;
  dspec.num_classes = 3;
  dspec.train_per_class = 8;
  dspec.test_per_class = 8;
  const SyntheticData data = make_synthetic_data(dspec);
  SmallNetConfig nspec;
  nspec.num_classes = 3;
  SmallEpitomeNet net(nspec);
  TrainConfig tcfg;
  tcfg.epochs = 1;
  train_model(net, data, tcfg);

  PipelineConfig cfg;
  cfg.precision = PrecisionPlan::uniform(8, 10);
  cfg.serve.max_batch = 8;
  cfg.serve.flush_deadline_ms = 0.5;
  cfg.serve.workers = 2;
  Pipeline pipeline(cfg);
  InferenceService service =
      pipeline.deploy(net, data.train).serve(cfg.serve);

  std::vector<std::future<InferenceResult>> pending;
  for (int burst = 0; burst < 4; ++burst) {
    std::vector<Tensor> images;
    for (std::int64_t i = 0; i < data.test.size(); ++i) {
      images.push_back(data.test.sample(i));
    }
    for (auto& f : service.submit_batch(std::move(images))) {
      pending.push_back(std::move(f));
    }
  }
  for (auto& f : pending) f.get();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "trace.json";
  bool metrics_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics_only = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out trace.json] [--metrics]\n",
                   argv[0]);
      return 2;
    }
  }

  epim::telemetry::set_tracing(true);
  drive_workload();
  epim::telemetry::set_tracing(false);

  if (metrics_only) {
    const std::string text = epim::telemetry::Registry::process().render_text();
    std::fwrite(text.data(), 1, text.size(), stdout);
    return 0;
  }

  const std::string json = epim::telemetry::render_trace_json();
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << json;
  out.close();
  std::fprintf(stderr, "wrote %llu spans to %s\n",
               static_cast<unsigned long long>(
                   epim::telemetry::snapshot_spans().size()),
               out_path.c_str());
  return 0;
}
