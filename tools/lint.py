#!/usr/bin/env python3
"""Repo-invariant lint: checks the generic tools (clang-tidy, thread-safety
analysis) cannot express. Registered as a ctest test and run by the
static-analysis CI job; exits nonzero with file:line diagnostics on any
violation.

Rules (each with its rationale):

  raw-lock        No raw std::mutex / std::condition_variable /
                  std::lock_guard / std::unique_lock / std::scoped_lock /
                  std::shared_mutex (or their headers) anywhere under src/
                  except common/thread_annotations.hpp. Everything must lock
                  through the annotated epim::Mutex wrappers, or the
                  thread-safety analysis and the lockdep layer are blind to
                  it. (tests/ and bench/ may use raw primitives -- e.g. to
                  exercise the pool from outside.)

  pinned-errors   A direct `throw InvalidArgument(...)` / `throw
                  Unavailable(...)` / `throw DeadlineExceeded(...)`
                  statement in src/ -- or the same constructors wrapped in
                  std::make_exception_ptr (how a promise is failed) -- must
                  reference a pinned kErr* message constant, and every
                  kErr* constant a throw references must be DEFINED (have a
                  `kErrName = ...` site) somewhere under src/. Tests pin
                  exact messages; ad-hoc strings drift, and a typo'd
                  constant name would otherwise satisfy the textual check
                  while pinning nothing. (EPIM_CHECK is the sanctioned
                  free-form path -- it prefixes and formats uniformly; the
                  macro's own implementation in common/error.cpp is the one
                  allowed raw-throw site.)

  schema-sync     Every ServeConfig field in pipeline_config.hpp appears in
                  the positional .epim codec in src/serve/artifact.cpp (as
                  `.serve.<field>`, written and read), and artifact.cpp
                  cites the CURRENT artifact.hpp kSchemaVersion in a
                  "schema v<N>" comment next to the codec. Adding a config
                  knob without appending codec lines truncates round-trips;
                  appending codec lines without bumping (and citing)
                  kSchemaVersion lets old readers misparse new artifacts.

  include-cycle   No cycle in the `#include "..."` graph of src/ headers.
                  Cycles compile accidentally (pragma once) until the day
                  they do not.

  pragma-once     Every header under src/ carries #pragma once.

  metric-names    Every telemetry family registration in src/ --
                  register_counter / register_gauge / register_histogram --
                  passes a LITERAL name matching
                  `^epim_[a-z0-9_]+(_total|_ms|_bytes|_depth)?$`, and each
                  name is registered exactly once across src/. Literal names
                  keep the exposition greppable; single-site registration
                  keeps one family from forking help text or type between
                  callers. (The Registry's own declarations/definitions in
                  src/telemetry/telemetry.{hpp,cpp} are the allowed
                  non-literal sites; tests and tools may register ad-hoc
                  epim_test_* families in their local registries.)

Run locally:  python3 tools/lint.py [--root REPO_ROOT]
"""

import argparse
import os
import re
import sys

# Files allowed to touch raw standard-library locking primitives, and why.
RAW_LOCK_ALLOWLIST = {
    # The annotated capability wrappers themselves.
    "src/common/thread_annotations.hpp",
}

# Files allowed to `throw InvalidArgument/Unavailable/DeadlineExceeded`
# without a kErr* constant, and why.
PINNED_ERROR_ALLOWLIST = {
    # Implements EPIM_CHECK itself: the uniform formatter every free-form
    # message is required to go through.
    "src/common/error.cpp",
}

RAW_LOCK_TOKENS = [
    "std::mutex",
    "std::timed_mutex",
    "std::recursive_mutex",
    "std::recursive_timed_mutex",
    "std::shared_mutex",
    "std::shared_timed_mutex",
    "std::condition_variable",
    "std::condition_variable_any",
    "std::lock_guard",
    "std::unique_lock",
    "std::scoped_lock",
    "std::shared_lock",
]

RAW_LOCK_INCLUDES = ["<mutex>", "<condition_variable>", "<shared_mutex>"]

# Files whose register_* tokens are the Registry API itself, not call sites.
METRIC_REGISTRATION_ALLOWLIST = {
    "src/telemetry/telemetry.hpp",
    "src/telemetry/telemetry.cpp",
}

METRIC_NAME_RE = re.compile(r"^epim_[a-z0-9_]+(_total|_ms|_bytes|_depth)?$")
METRIC_CALL_RE = re.compile(
    r"\bregister_(?:counter|gauge|histogram)\s*\(\s*(?P<name>\"[^\"]*\")?"
)

THROW_RE = re.compile(
    r"\b(?:throw\s+|std::make_exception_ptr\s*\(\s*)"
    r"(InvalidArgument|Unavailable|DeadlineExceeded)\s*\("
)
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
LINE_COMMENT_RE = re.compile(r"//.*$")


def strip_line_comment(line):
    """Drop // comments so prose mentioning std::mutex does not trip the
    lint. (Block comments are handled by the caller's state machine.)"""
    return LINE_COMMENT_RE.sub("", line)


def iter_code_lines(text):
    """Yield (lineno, code) with // and /* */ comment spans blanked out.
    String literals are left intact: a lock-type name inside a string is
    almost certainly a lock NAME, which is fine to mention."""
    in_block = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        out = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end == -1:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
            else:
                start_block = line.find("/*", i)
                start_line = line.find("//", i)
                if start_line != -1 and (
                    start_block == -1 or start_line < start_block
                ):
                    out.append(line[i:start_line])
                    i = len(line)
                elif start_block != -1:
                    out.append(line[i:start_block])
                    in_block = True
                    i = start_block + 2
                else:
                    out.append(line[i:])
                    i = len(line)
        yield lineno, "".join(out)


def source_files(root, subdir, exts):
    for dirpath, _dirnames, filenames in os.walk(os.path.join(root, subdir)):
        for filename in sorted(filenames):
            if os.path.splitext(filename)[1] in exts:
                path = os.path.join(dirpath, filename)
                yield os.path.relpath(path, root).replace(os.sep, "/")


def check_raw_locks(root, findings):
    for rel in source_files(root, "src", {".hpp", ".cpp"}):
        if rel in RAW_LOCK_ALLOWLIST:
            continue
        text = open(os.path.join(root, rel), encoding="utf-8").read()
        for lineno, code in iter_code_lines(text):
            for token in RAW_LOCK_TOKENS:
                if token in code:
                    findings.append(
                        f"{rel}:{lineno}: [raw-lock] {token} outside "
                        "common/thread_annotations.hpp -- use epim::Mutex/"
                        "MutexLock/CondVar so the thread-safety analysis "
                        "and lockdep can see the lock"
                    )
            for inc in RAW_LOCK_INCLUDES:
                if re.search(r"#\s*include\s+" + re.escape(inc), code):
                    findings.append(
                        f"{rel}:{lineno}: [raw-lock] #include {inc} outside "
                        "common/thread_annotations.hpp"
                    )


def check_pinned_errors(root, findings):
    # Pass 1: collect every kErr* definition site under src/ (a `kErrName =`
    # assignment -- inline constexpr in a header or an out-of-line member
    # definition in a .cpp both match).
    defined = set()
    for rel in source_files(root, "src", {".hpp", ".cpp"}):
        text = open(os.path.join(root, rel), encoding="utf-8").read()
        code = "\n".join(c for _n, c in iter_code_lines(text))
        defined.update(ERR_DEF_RE.findall(code))

    for rel in source_files(root, "src", {".hpp", ".cpp"}):
        if rel in PINNED_ERROR_ALLOWLIST:
            continue
        text = open(os.path.join(root, rel), encoding="utf-8").read()
        # Join physical lines so a throw spanning lines is one statement.
        code = "\n".join(c for _n, c in iter_code_lines(text))
        for match in THROW_RE.finditer(code):
            stmt_end = code.find(";", match.start())
            stmt = code[match.start() : stmt_end if stmt_end != -1 else None]
            lineno = code.count("\n", 0, match.start()) + 1
            if "kErr" not in stmt:
                findings.append(
                    f"{rel}:{lineno}: [pinned-errors] throw "
                    f"{match.group(1)}(...) without a pinned kErr* message "
                    "constant -- tests pin these messages; either use "
                    "EPIM_CHECK or add a kErr* constant"
                )
                continue
            for token in set(ERR_USE_RE.findall(stmt)):
                if token not in defined:
                    findings.append(
                        f"{rel}:{lineno}: [pinned-errors] throw references "
                        f"{token} but no `{token} = ...` definition exists "
                        "under src/ -- the constant pins nothing"
                    )


# A kErr* definition site (`kErrName = ...`) vs a mere use of the token.
ERR_DEF_RE = re.compile(r"\b(kErr\w+)\s*=")
ERR_USE_RE = re.compile(r"\b(kErr\w+)\b")

# ServeConfig member declarations: `type name = default;` inside the struct.
SERVE_FIELD_RE = re.compile(
    r"^\s*(?:int|double|bool|float|std::int64_t|std::size_t|std::string)\s+"
    r"(\w+)\s*="
)


def check_schema_sync(root, findings):
    config_rel = "src/pipeline/pipeline_config.hpp"
    codec_rel = "src/serve/artifact.cpp"
    header_rel = "src/serve/artifact.hpp"
    config = open(os.path.join(root, config_rel), encoding="utf-8").read()
    codec = open(os.path.join(root, codec_rel), encoding="utf-8").read()
    header = open(os.path.join(root, header_rel), encoding="utf-8").read()

    # Extract ServeConfig's field names (comments stripped so prose cannot
    # add phantom fields).
    fields = []
    in_struct = False
    struct_line = 0
    for lineno, code in iter_code_lines(config):
        if re.search(r"\bstruct\s+ServeConfig\b", code):
            in_struct = True
            struct_line = lineno
            continue
        if in_struct:
            if re.match(r"^\s*};", code):
                break
            m = SERVE_FIELD_RE.match(code)
            if m:
                fields.append((lineno, m.group(1)))
    if not in_struct or not fields:
        findings.append(
            f"{config_rel}:{struct_line or 1}: [schema-sync] could not parse "
            "ServeConfig fields -- update tools/lint.py alongside the struct"
        )
        return

    # Each field must be both written and read by the positional codec.
    for lineno, field in fields:
        if len(re.findall(r"\.serve\." + field + r"\b", codec)) < 2:
            findings.append(
                f"{config_rel}:{lineno}: [schema-sync] ServeConfig::{field} "
                f"is not round-tripped by {codec_rel} (need a write and a "
                "read of `.serve." + field + "`) -- append codec lines and "
                "bump artifact.hpp kSchemaVersion"
            )

    # The codec must cite the CURRENT schema version in a comment, so a
    # field appended without a version bump (or a bump without its citation)
    # is caught.
    version = re.search(r"kSchemaVersion\s*=\s*(\d+)", header)
    if version is None:
        findings.append(
            f"{header_rel}:1: [schema-sync] could not parse kSchemaVersion"
        )
        return
    citation = f"schema v{version.group(1)}"
    if citation not in codec:
        findings.append(
            f"{codec_rel}:1: [schema-sync] codec does not cite the current "
            f'"{citation}" (artifact.hpp kSchemaVersion = '
            f"{version.group(1)}) -- a codec change must name the version "
            "bump that ships it"
        )


def check_metric_names(root, findings):
    seen = {}  # metric name -> first "file:line" that registered it
    for rel in source_files(root, "src", {".hpp", ".cpp"}):
        if rel in METRIC_REGISTRATION_ALLOWLIST:
            continue
        text = open(os.path.join(root, rel), encoding="utf-8").read()
        # Join lines so a call whose name literal wrapped survives.
        lines = list(iter_code_lines(text))
        code = "\n".join(c for _n, c in lines)
        for match in METRIC_CALL_RE.finditer(code):
            lineno = code.count("\n", 0, match.start()) + 1
            literal = match.group("name")
            if literal is None:
                findings.append(
                    f"{rel}:{lineno}: [metric-names] register_* with a "
                    "non-literal metric name -- names must be greppable "
                    "string literals"
                )
                continue
            name = literal[1:-1]
            if not METRIC_NAME_RE.match(name):
                findings.append(
                    f"{rel}:{lineno}: [metric-names] metric name {literal} "
                    "violates ^epim_[a-z0-9_]+(_total|_ms|_bytes|_depth)?$"
                )
            here = f"{rel}:{lineno}"
            if name in seen:
                findings.append(
                    f"{here}: [metric-names] metric {literal} already "
                    f"registered at {seen[name]} -- each family has exactly "
                    "one registration site"
                )
            else:
                seen[name] = here


def check_include_cycles(root, findings):
    graph = {}
    for rel in source_files(root, "src", {".hpp", ".cpp"}):
        text = open(os.path.join(root, rel), encoding="utf-8").read()
        deps = []
        for _lineno, code in iter_code_lines(text):
            m = INCLUDE_RE.match(code)
            if m and os.path.exists(os.path.join(root, "src", m.group(1))):
                deps.append("src/" + m.group(1))
        graph[rel] = deps

    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    stack = []

    def dfs(node):
        color[node] = GRAY
        stack.append(node)
        for dep in graph.get(node, ()):  # only src files are nodes
            if color.get(dep, BLACK) == GRAY:
                cycle = stack[stack.index(dep) :] + [dep]
                findings.append(
                    "[include-cycle] " + " -> ".join(cycle)
                )
            elif color.get(dep, BLACK) == WHITE:
                dfs(dep)
        stack.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color[node] == WHITE:
            dfs(node)


def check_pragma_once(root, findings):
    for rel in source_files(root, "src", {".hpp"}):
        text = open(os.path.join(root, rel), encoding="utf-8").read()
        if "#pragma once" not in text:
            findings.append(f"{rel}:1: [pragma-once] header missing #pragma once")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of tools/)",
    )
    args = parser.parse_args()

    findings = []
    check_raw_locks(args.root, findings)
    check_pinned_errors(args.root, findings)
    check_schema_sync(args.root, findings)
    check_metric_names(args.root, findings)
    check_include_cycles(args.root, findings)
    check_pragma_once(args.root, findings)

    for finding in findings:
        print(finding)
    if findings:
        print(f"lint: {len(findings)} violation(s)", file=sys.stderr)
        return 1
    print("lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
