#!/usr/bin/env python3
"""Validate a Prometheus text exposition line-by-line.

Run against the live registry (CI and the `check_metrics` ctest):

    python3 tools/check_metrics.py --binary ./build/tools/trace_export

which executes `trace_export --metrics` and validates its stdout. Or feed a
captured exposition on stdin:

    ./build/tools/trace_export --metrics | python3 tools/check_metrics.py

Checks, per the Prometheus text format:

  * Every line is `# HELP <name> <text>`, `# TYPE <name> <type>`, or a
    sample `name{labels} value` / `name value` with a parseable value.
  * HELP/TYPE precede their family's samples; TYPE appears exactly once per
    family; samples of one family are contiguous (no interleaving).
  * Sample names match their family: bare name for counters/gauges;
    `_bucket`/`_sum`/`_count` suffixes for histograms.
  * Histogram buckets: `le` bounds strictly increasing, cumulative counts
    non-decreasing, last bucket is `le="+Inf"`, and `_count` equals the
    +Inf bucket's value; `_sum` present.
  * Family names match the repo rule
    `epim_[a-z0-9_]+(_total|_ms|_bytes|_depth)?` (suffix informational --
    the charset is the binding part).

Exit 0 when the exposition is valid, 1 with the offending lines otherwise.
"""

import argparse
import re
import subprocess
import sys

NAME_RE = re.compile(r"^epim_[a-z0-9_]+$")
HELP_RE = re.compile(r"^# HELP (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) (?P<text>.*)$")
TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) (?P<type>counter|gauge|histogram|summary|untyped)$"
)
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? (?P<value>\S+)(?: (?P<timestamp>-?\d+))?$"
)
LABEL_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)


def split_labels(body):
    """Split `a="x",b="y"` into pairs, honouring escaped quotes."""
    if body == "":
        return []
    pairs = []
    depth_in_quote = False
    current = ""
    i = 0
    while i < len(body):
        c = body[i]
        if c == "\\" and depth_in_quote and i + 1 < len(body):
            current += body[i : i + 2]
            i += 2
            continue
        if c == '"':
            depth_in_quote = not depth_in_quote
        if c == "," and not depth_in_quote:
            pairs.append(current)
            current = ""
        else:
            current += c
        i += 1
    pairs.append(current)
    return pairs


def parse_value(text):
    if text in ("+Inf", "-Inf", "NaN"):
        return float(text.replace("Inf", "inf").replace("NaN", "nan"))
    return float(text)  # raises ValueError on garbage


def base_family(name):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)], suffix
    return name, ""


def check(text):
    errors = []
    helps = {}
    types = {}
    # family -> {series body -> list of (le, cumulative)} for histograms
    hist_buckets = {}
    hist_sum = {}
    hist_count = {}
    current_family = None
    closed_families = set()

    def err(lineno, line, message):
        errors.append("line %d: %s\n    %s" % (lineno, message, line))

    for lineno, line in enumerate(text.splitlines(), start=1):
        if line == "":
            err(lineno, line, "blank line inside exposition")
            continue
        if line.startswith("#"):
            m = HELP_RE.match(line)
            if m:
                name = m.group("name")
                if name in helps:
                    err(lineno, line, "duplicate HELP for %s" % name)
                helps[name] = m.group("text")
                continue
            m = TYPE_RE.match(line)
            if m:
                name = m.group("name")
                if name in types:
                    err(lineno, line, "duplicate TYPE for %s" % name)
                if name in closed_families:
                    err(lineno, line, "TYPE for %s after its samples" % name)
                types[name] = m.group("type")
                if current_family is not None and current_family != name:
                    closed_families.add(current_family)
                current_family = name
                continue
            err(lineno, line, "malformed comment line")
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            err(lineno, line, "malformed sample line")
            continue
        name = m.group("name")
        family, suffix = base_family(name)
        # A counter family may itself end in _count etc.; prefer the family
        # that was TYPEd.
        if name in types:
            family, suffix = name, ""
        if family not in types:
            err(lineno, line, "sample for %s precedes its # TYPE" % family)
            continue
        if family != current_family:
            if family in closed_families:
                err(lineno, line, "samples for %s are not contiguous" % family)
            else:
                err(lineno, line, "sample for %s under TYPE %s"
                    % (family, current_family))
            continue
        if not NAME_RE.match(family):
            err(lineno, line, "family name %s violates epim naming" % family)
        ftype = types[family]
        if ftype == "histogram":
            if suffix == "":
                err(lineno, line, "bare sample for histogram %s" % family)
                continue
        elif suffix != "":
            err(lineno, line, "suffix %s on non-histogram %s" % (suffix, family))
            continue

        labels = m.group("labels")
        pairs = []
        if labels is not None:
            for raw in split_labels(labels):
                lm = LABEL_RE.match(raw)
                if not lm:
                    err(lineno, line, "malformed label %r" % raw)
                    break
                pairs.append((lm.group("name"), lm.group("value")))
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            err(lineno, line, "unparseable value %r" % m.group("value"))
            continue

        if ftype == "histogram":
            le = None
            others = []
            for lname, lvalue in pairs:
                if lname == "le":
                    le = lvalue
                else:
                    others.append((lname, lvalue))
            body = ",".join("%s=%s" % p for p in others)
            if suffix == "_bucket":
                if le is None:
                    err(lineno, line, "_bucket without an le label")
                    continue
                try:
                    bound = parse_value(le)
                except ValueError:
                    err(lineno, line, "unparseable le bound %r" % le)
                    continue
                series = hist_buckets.setdefault(family, {}).setdefault(body, [])
                if series:
                    if bound <= series[-1][0]:
                        err(lineno, line, "le bounds not increasing")
                    if value < series[-1][1]:
                        err(lineno, line, "cumulative bucket count decreased")
                series.append((bound, value, lineno, line))
            elif suffix == "_sum":
                hist_sum.setdefault(family, {})[body] = value
            elif suffix == "_count":
                hist_count.setdefault(family, {})[body] = (value, lineno, line)
        else:
            if value < 0 and ftype == "counter":
                err(lineno, line, "negative counter value")

    # Per-histogram-series closure checks.
    for family, by_body in hist_buckets.items():
        for body, series in by_body.items():
            bound, value, lineno, line = series[-1]
            if bound != float("inf"):
                err(lineno, line, "last bucket of %s{%s} is not le=\"+Inf\""
                    % (family, body))
            count = hist_count.get(family, {}).get(body)
            if count is None:
                errors.append("%s{%s}: missing _count" % (family, body))
            elif count[0] != value:
                err(count[1], count[2], "_count %g != +Inf bucket %g"
                    % (count[0], value))
            if body not in hist_sum.get(family, {}):
                errors.append("%s{%s}: missing _sum" % (family, body))
    # A histogram family with no series at all (HELP/TYPE only) is legal --
    # but a series with _sum/_count and no buckets is not.
    for source in (hist_sum, hist_count):
        for family, by_body in source.items():
            for body in by_body:
                if body not in hist_buckets.get(family, {}):
                    errors.append("%s{%s}: _sum/_count without buckets"
                                  % (family, body))
    for family in types:
        if family not in helps:
            errors.append("%s: missing # HELP" % family)
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", help="run BINARY --metrics and check stdout")
    args = parser.parse_args()

    if args.binary:
        proc = subprocess.run(
            [args.binary, "--metrics"], capture_output=True, text=True,
            timeout=600)
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            print("FAIL: %s --metrics exited %d" % (args.binary, proc.returncode))
            return 1
        text = proc.stdout
    else:
        text = sys.stdin.read()

    if not text.strip():
        print("FAIL: empty exposition")
        return 1
    errors = check(text)
    if errors:
        for e in errors:
            print("FAIL: %s" % e)
        return 1
    families = len(re.findall(r"(?m)^# TYPE ", text))
    samples = len([l for l in text.splitlines() if l and not l.startswith("#")])
    print("OK: %d families, %d sample lines, grammar valid" % (families, samples))
    return 0


if __name__ == "__main__":
    sys.exit(main())
